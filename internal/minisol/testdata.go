package minisol

// VictimSource is the paper's Section 2 running example: a contract whose
// referAdmin is guarded by onlyUsers instead of onlyAdmins, enabling the
// four-step composite escalation user -> admin -> owner -> selfdestruct.
const VictimSource = `
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    constructor() {
        owner = msg.sender;
        admins[msg.sender] = true;
    }

    modifier onlyAdmins() {
        require(admins[msg.sender]);
        _;
    }
    modifier onlyUsers() {
        require(users[msg.sender]);
        _;
    }

    function registerSelf() public {
        users[msg.sender] = true;
    }
    function referUser(address user) public onlyUsers {
        users[user] = true;
    }
    function referAdmin(address adm) public onlyUsers {
        admins[adm] = true;
    }
    function changeOwner(address o) public onlyAdmins {
        owner = o;
    }
    function kill() public onlyAdmins {
        selfdestruct(owner);
    }
}
`

// TaintedOwnerSource is the Section 3.1 example: a public initOwner lets
// anyone overwrite the owner used to guard kill().
const TaintedOwnerSource = `
contract InitOwner {
    address owner;

    function initOwner(address _owner) public {
        owner = _owner;
    }
    function kill() public {
        if (msg.sender == owner) {
            selfdestruct(owner);
        }
    }
}
`

// TaintedDelegatecallSource is the Section 3.2 migrate() example.
const TaintedDelegatecallSource = `
contract Migrator {
    function migrate(address delegate) public {
        delegatecall(delegate);
    }
}
`

// AccessibleSelfdestructSource is the Section 3.3 unguarded kill().
const AccessibleSelfdestructSource = `
contract Killable {
    address beneficiary;

    constructor() {
        beneficiary = msg.sender;
    }
    function kill() public {
        selfdestruct(beneficiary);
    }
}
`

// TaintedSelfdestructSource is the Section 3.4 example: the selfdestruct is
// owner-guarded, but any user can taint the beneficiary address first.
const TaintedSelfdestructSource = `
contract AdminPay {
    address owner;
    address administrator;

    constructor() {
        owner = msg.sender;
    }
    function initAdmin(address admin) public {
        administrator = admin;
    }
    function kill() public {
        if (msg.sender == owner) {
            selfdestruct(administrator);
        }
    }
}
`

// UncheckedStaticcallSource is the Section 3.5 0x-exchange pattern.
const UncheckedStaticcallSource = `
contract Exchange {
    mapping(address => bool) settled;

    function isValidSignature(address wallet, uint256 hash) public returns (uint256) {
        uint256 isValid = staticcall_unchecked(wallet, hash);
        return isValid;
    }
    function settle(address wallet, uint256 hash) public {
        require(staticcall_unchecked(wallet, hash) == 1);
        settled[msg.sender] = true;
    }
}
`

// SafeTokenSource is a well-guarded ERC20-style token used as a negative
// control: its writes are all to sender-keyed data structures or properly
// owner-guarded.
const SafeTokenSource = `
contract Token {
    address owner;
    uint256 totalSupply;
    mapping(address => uint256) balances;
    mapping(address => mapping(address => uint256)) allowed;

    constructor() {
        owner = msg.sender;
        totalSupply = 1000000;
        balances[msg.sender] = 1000000;
    }

    modifier onlyOwner() {
        require(msg.sender == owner);
        _;
    }

    function transfer(address to, uint256 value) public returns (bool) {
        require(balances[msg.sender] >= value);
        balances[msg.sender] -= value;
        balances[to] += value;
        return true;
    }
    function approve(address spender, uint256 value) public returns (bool) {
        allowed[msg.sender][spender] = value;
        return true;
    }
    function transferFrom(address from, address to, uint256 value) public returns (bool) {
        require(balances[from] >= value);
        require(allowed[from][msg.sender] >= value);
        allowed[from][msg.sender] -= value;
        balances[from] -= value;
        balances[to] += value;
        return true;
    }
    function balanceOf(address who) public view returns (uint256) {
        return balances[who];
    }
    function mint(address to, uint256 value) public onlyOwner {
        totalSupply += value;
        balances[to] += value;
    }
    function kill() public onlyOwner {
        selfdestruct(owner);
    }
}
`
