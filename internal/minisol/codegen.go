package minisol

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// Memory layout of compiled contracts:
//
//	0x00..0x3f  hash scratch (mapping slot computation, return buffer)
//	0x40..0x7f  external-call buffer (delegatecall/staticcall/transfer)
//	0x80...     function frames: one 32-byte cell per param/local/temp,
//	            plus one return-value cell per function. Frames are at
//	            fixed, per-function offsets (recursion is rejected).
const (
	scratchBase = 0x00
	callBuf     = 0x40
	frameStart  = 0x80
)

// Compiled is the output of compilation.
type Compiled struct {
	Contract *Contract
	Runtime  []byte // code executed by transactions
	Deploy   []byte // init code: constructor + CODECOPY of runtime
	ABI      []FuncABI
	Source   string // original source when compiled via CompileSource
}

// CompileSource parses, checks, and compiles a contract.
func CompileSource(src string) (*Compiled, error) {
	c, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(c); err != nil {
		return nil, err
	}
	out, err := Compile(c)
	if err != nil {
		return nil, err
	}
	out.Source = src
	return out, nil
}

// MustCompile is CompileSource that panics on error; for tests and fixtures.
func MustCompile(src string) *Compiled {
	out, err := CompileSource(src)
	if err != nil {
		panic(err)
	}
	return out
}

// Compile generates bytecode for a checked contract.
func Compile(c *Contract) (*Compiled, error) {
	cg := newCodegen(c)
	runtime, err := cg.runtime()
	if err != nil {
		return nil, err
	}
	deploy, err := cg.deploy(runtime)
	if err != nil {
		return nil, err
	}
	return &Compiled{Contract: c, Runtime: runtime, Deploy: deploy, ABI: ABIOf(c)}, nil
}

// --- emitter: bytecode buffer with label fixups ---

type fixup struct {
	at    int // offset of the two immediate bytes
	label string
}

type emitter struct {
	code   []byte
	labels map[string]int
	fixups []fixup
	seq    int
}

func newEmitter() *emitter { return &emitter{labels: map[string]int{}} }

func (e *emitter) op(ops ...evm.Op) {
	for _, op := range ops {
		e.code = append(e.code, byte(op))
	}
}

// push emits a minimally-sized PUSH of v.
func (e *emitter) push(v u256.U256) {
	n := (v.BitLen() + 7) / 8
	if n == 0 {
		n = 1
	}
	e.code = append(e.code, byte(evm.PushN(n)))
	b := v.Bytes32()
	e.code = append(e.code, b[32-n:]...)
}

func (e *emitter) pushInt(n uint64) { e.push(u256.FromUint64(n)) }

// pushLabel emits a PUSH2 of a label address, patched at finish.
func (e *emitter) pushLabel(name string) {
	e.code = append(e.code, byte(evm.PushN(2)))
	e.fixups = append(e.fixups, fixup{at: len(e.code), label: name})
	e.code = append(e.code, 0, 0)
}

// label defines name at the current offset and emits a JUMPDEST.
func (e *emitter) label(name string) {
	if _, dup := e.labels[name]; dup {
		panic(fmt.Sprintf("minisol: duplicate label %q", name))
	}
	e.labels[name] = len(e.code)
	e.op(evm.JUMPDEST)
}

func (e *emitter) fresh(prefix string) string {
	e.seq++
	return fmt.Sprintf("%s_%d", prefix, e.seq)
}

func (e *emitter) finish() ([]byte, error) {
	for _, f := range e.fixups {
		addr, ok := e.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("minisol: undefined label %q", f.label)
		}
		if addr > 0xffff {
			return nil, fmt.Errorf("minisol: code too large: label %q at %d", f.label, addr)
		}
		e.code[f.at] = byte(addr >> 8)
		e.code[f.at+1] = byte(addr)
	}
	return e.code, nil
}

// --- code generator ---

type codegen struct {
	c         *Contract
	e         *emitter
	frameBase map[string]int // function name ("" = ctor) -> frame byte offset
	retCell   map[string]int // function name -> return-cell byte offset
	fn        *Function      // function being generated
	inCtor    bool
}

func newCodegen(c *Contract) *codegen {
	cg := &codegen{c: c, frameBase: map[string]int{}, retCell: map[string]int{}}
	offset := frameStart
	assign := func(fn *Function) {
		cg.frameBase[fn.Name] = offset
		offset += 32 * fn.Cells
		cg.retCell[fn.Name] = offset
		offset += 32
	}
	for _, fn := range c.Functions {
		assign(fn)
	}
	if c.Ctor != nil {
		assign(c.Ctor)
	}
	return cg
}

func (cg *codegen) cellAddr(b *Binding) uint64 {
	return uint64(cg.frameBase[cg.fn.Name] + 32*b.LocalIdx)
}

var addressMask = u256.One.Shl(160).Sub(u256.One)

// runtime emits the dispatcher, public function bodies, and internal
// functions.
func (cg *codegen) runtime() ([]byte, error) {
	cg.e = newEmitter()
	e := cg.e

	// Dispatcher: selector := calldataload(0) >> 224.
	e.pushInt(0)
	e.op(evm.CALLDATALOAD)
	e.pushInt(0xe0)
	e.op(evm.SHR)
	var publics []*Function
	for _, fn := range cg.c.Functions {
		if fn.Public {
			publics = append(publics, fn)
		}
	}
	// Deterministic dispatch order (by selector) like solc.
	sort.Slice(publics, func(i, j int) bool {
		a, b := SelectorOf(publics[i].Signature()), SelectorOf(publics[j].Signature())
		return strings.Compare(string(a[:]), string(b[:])) < 0
	})
	for _, fn := range publics {
		sel := SelectorOf(fn.Signature())
		e.op(evm.DUP1)
		e.push(u256.FromBytes(sel[:]))
		e.op(evm.EQ)
		e.pushLabel("pub_" + fn.Name)
		e.op(evm.JUMPI)
	}
	// Fallback: revert.
	cg.emitRevert()

	for _, fn := range publics {
		if err := cg.publicFunction(fn); err != nil {
			return nil, err
		}
	}
	for _, fn := range cg.c.Functions {
		if fn.Public {
			continue
		}
		if err := cg.internalFunction(fn); err != nil {
			return nil, err
		}
	}
	return e.finish()
}

func (cg *codegen) emitRevert() {
	cg.e.pushInt(0)
	cg.e.pushInt(0)
	cg.e.op(evm.REVERT)
}

func (cg *codegen) publicFunction(fn *Function) error {
	cg.fn = fn
	e := cg.e
	e.label("pub_" + fn.Name)
	e.op(evm.POP) // drop the dispatcher's selector copy
	if !fn.Payable {
		// Non-payable check, as solc emits it.
		ok := e.fresh("nonpay")
		e.op(evm.CALLVALUE, evm.ISZERO)
		e.pushLabel(ok)
		e.op(evm.JUMPI)
		cg.emitRevert()
		e.label(ok)
	}
	// Load parameters from calldata into frame cells.
	for i, p := range fn.Params {
		e.pushInt(uint64(4 + 32*i))
		e.op(evm.CALLDATALOAD)
		if p.Type.Kind == TyAddress {
			e.push(addressMask)
			e.op(evm.AND)
		}
		if p.Type.Kind == TyBool {
			e.op(evm.ISZERO, evm.ISZERO) // normalize to 0/1
		}
		e.pushInt(uint64(cg.frameBase[fn.Name] + 32*i))
		e.op(evm.MSTORE)
	}
	if err := cg.stmts(fn.Body); err != nil {
		return err
	}
	// Implicit end: void functions STOP; value functions return zero.
	if fn.Ret == nil {
		e.op(evm.STOP)
	} else {
		e.pushInt(0)
		cg.emitReturnWord()
	}
	return nil
}

// emitReturnWord returns the word on top of the stack as the 32-byte output.
func (cg *codegen) emitReturnWord() {
	e := cg.e
	e.pushInt(scratchBase)
	e.op(evm.MSTORE)
	e.pushInt(32)
	e.pushInt(scratchBase)
	e.op(evm.RETURN)
}

func (cg *codegen) internalFunction(fn *Function) error {
	cg.fn = fn
	e := cg.e
	e.label("fn_" + fn.Name)
	// Zero the return cell so fall-through returns are defined.
	if fn.Ret != nil {
		e.pushInt(0)
		e.pushInt(uint64(cg.retCell[fn.Name]))
		e.op(evm.MSTORE)
	}
	if err := cg.stmts(fn.Body); err != nil {
		return err
	}
	e.label("fnexit_" + fn.Name)
	e.op(evm.JUMP) // return address is the only stack residue
	return nil
}

// deploy builds init code: state-variable initializers, the constructor body,
// then CODECOPY + RETURN of the runtime appended after the init code.
func (cg *codegen) deploy(runtime []byte) ([]byte, error) {
	cg.e = newEmitter()
	e := cg.e
	ctor := cg.c.Ctor
	if ctor == nil {
		ctor = &Function{Name: "", Line: 0}
		cg.frameBase[""] = frameStart
		cg.retCell[""] = frameStart
	}
	cg.fn = ctor
	cg.inCtor = true
	defer func() { cg.inCtor = false }()

	for _, v := range cg.c.Vars {
		if v.Init == nil {
			continue
		}
		if err := cg.expr(v.Init); err != nil {
			return nil, err
		}
		e.pushInt(uint64(v.Slot))
		e.op(evm.SSTORE)
	}
	if err := cg.stmts(ctor.Body); err != nil {
		return nil, err
	}
	// CODECOPY(0, runtimeStart, len) ; RETURN(0, len). The runtime offset is
	// only known after the epilogue is emitted, so patch it via a label-like
	// fixup: emit with placeholder PUSH2s and resolve manually.
	e.labels["__runtime_len"] = len(runtime)
	e.pushLabel("__runtime_len")
	e.pushLabel("__runtime_start")
	e.pushInt(0)
	e.op(evm.CODECOPY)
	e.pushLabel("__runtime_len")
	e.pushInt(0)
	e.op(evm.RETURN)
	e.labels["__runtime_start"] = len(e.code)
	init, err := e.finish()
	if err != nil {
		return nil, err
	}
	return append(init, runtime...), nil
}

// --- statements ---

func (cg *codegen) stmts(list []Stmt) error {
	for _, s := range list {
		if err := cg.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (cg *codegen) stmt(s Stmt) error {
	e := cg.e
	switch s := s.(type) {
	case *DeclStmt:
		b := cg.lookupLocal(s)
		if call, ok := s.Init.(*CallExpr); ok && call.Target != nil {
			if err := cg.internalCall(call, true); err != nil {
				return err
			}
		} else if s.Init != nil {
			if err := cg.expr(s.Init); err != nil {
				return err
			}
		} else {
			e.pushInt(0)
		}
		e.pushInt(uint64(cg.frameBase[cg.fn.Name] + 32*b.LocalIdx))
		e.op(evm.MSTORE)
		return nil
	case *AssignStmt:
		return cg.assign(s)
	case *IfStmt:
		if err := cg.expr(s.Cond); err != nil {
			return err
		}
		thenL, endL := e.fresh("then"), e.fresh("endif")
		e.pushLabel(thenL)
		e.op(evm.JUMPI)
		if err := cg.stmts(s.Else); err != nil {
			return err
		}
		e.pushLabel(endL)
		e.op(evm.JUMP)
		e.label(thenL)
		if err := cg.stmts(s.Then); err != nil {
			return err
		}
		e.label(endL)
		return nil
	case *WhileStmt:
		startL, bodyL, endL := e.fresh("loop"), e.fresh("body"), e.fresh("endloop")
		e.label(startL)
		if err := cg.expr(s.Cond); err != nil {
			return err
		}
		e.pushLabel(bodyL)
		e.op(evm.JUMPI)
		e.pushLabel(endL)
		e.op(evm.JUMP)
		e.label(bodyL)
		if err := cg.stmts(s.Body); err != nil {
			return err
		}
		e.pushLabel(startL)
		e.op(evm.JUMP)
		e.label(endL)
		return nil
	case *RequireStmt:
		if err := cg.expr(s.Cond); err != nil {
			return err
		}
		ok := e.fresh("req")
		e.pushLabel(ok)
		e.op(evm.JUMPI)
		if s.IsAssert {
			e.op(evm.INVALID)
		} else {
			cg.emitRevert()
		}
		e.label(ok)
		return nil
	case *RevertStmt:
		cg.emitRevert()
		return nil
	case *ReturnStmt:
		if cg.inCtor {
			return fmt.Errorf("minisol:%d: return is not allowed in constructors", s.Line)
		}
		if cg.fn.Public {
			if s.Value == nil {
				e.op(evm.STOP)
				return nil
			}
			if err := cg.expr(s.Value); err != nil {
				return err
			}
			cg.emitReturnWord()
			return nil
		}
		if s.Value != nil {
			if err := cg.expr(s.Value); err != nil {
				return err
			}
			e.pushInt(uint64(cg.retCell[cg.fn.Name]))
			e.op(evm.MSTORE)
		}
		e.pushLabel("fnexit_" + cg.fn.Name)
		e.op(evm.JUMP)
		return nil
	case *ExprStmt:
		if call, ok := s.X.(*CallExpr); ok && call.Target != nil {
			return cg.internalCall(call, false)
		}
		if err := cg.expr(s.X); err != nil {
			return err
		}
		e.op(evm.POP)
		return nil
	case *SelfdestructStmt:
		if err := cg.expr(s.Beneficiary); err != nil {
			return err
		}
		e.op(evm.SELFDESTRUCT)
		return nil
	case *DelegatecallStmt:
		// delegatecall(target) with empty calldata; success flag dropped —
		// the inline-assembly shape of the paper's migrate() example.
		e.pushInt(0)       // outLen
		e.pushInt(callBuf) // outOff
		e.pushInt(0)       // inLen
		e.pushInt(callBuf) // inOff
		if err := cg.expr(s.Target); err != nil {
			return err
		}
		e.op(evm.GAS, evm.DELEGATECALL, evm.POP)
		return nil
	case *TransferStmt:
		e.pushInt(0)
		e.pushInt(0)
		e.pushInt(0)
		e.pushInt(0)
		if err := cg.expr(s.Amount); err != nil {
			return err
		}
		if err := cg.expr(s.To); err != nil {
			return err
		}
		e.op(evm.GAS, evm.CALL)
		ok := cg.e.fresh("xfer")
		e.pushLabel(ok)
		e.op(evm.JUMPI)
		cg.emitRevert()
		e.label(ok)
		return nil
	case *PlaceholderStmt:
		return fmt.Errorf("minisol:%d: internal error: placeholder survived inlining", s.Line)
	}
	return fmt.Errorf("minisol: internal error: unknown statement %T", s)
}

// lookupLocal finds the binding a DeclStmt created during checking. The
// checker allocated the cell; recover it by name through the statement's own
// scope-free identity: bindings are attached to IdentExpr uses, so re-derive
// from the declaration order. To keep this robust we store bindings on first
// use: the checker guarantees LocalIdx uniqueness, so we track a per-function
// map populated from declarations as we walk them.
func (cg *codegen) lookupLocal(s *DeclStmt) *Binding {
	if s.binding == nil {
		panic(fmt.Sprintf("minisol: declaration of %q has no binding (Check not run?)", s.Name))
	}
	return s.binding
}

func (cg *codegen) assign(s *AssignStmt) error {
	e := cg.e
	switch lhs := s.LHS.(type) {
	case *IdentExpr:
		b := lhs.Binding
		switch b.Kind {
		case BindLocal, BindParam:
			cell := cg.cellAddr(b)
			if s.Op == '=' {
				if err := cg.expr(s.RHS); err != nil {
					return err
				}
			} else {
				e.pushInt(cell)
				e.op(evm.MLOAD)
				if err := cg.expr(s.RHS); err != nil {
					return err
				}
				cg.emitCompound(s.Op)
			}
			e.pushInt(cell)
			e.op(evm.MSTORE)
			return nil
		case BindState:
			slot := uint64(b.StateVar.Slot)
			if s.Op == '=' {
				if err := cg.expr(s.RHS); err != nil {
					return err
				}
			} else {
				e.pushInt(slot)
				e.op(evm.SLOAD)
				if err := cg.expr(s.RHS); err != nil {
					return err
				}
				cg.emitCompound(s.Op)
			}
			e.pushInt(slot)
			e.op(evm.SSTORE)
			return nil
		}
	case *IndexExpr:
		if s.Op == '=' {
			if err := cg.expr(s.RHS); err != nil {
				return err
			}
			if err := cg.mappingSlot(lhs); err != nil {
				return err
			}
			e.op(evm.SSTORE)
			return nil
		}
		// Compound: addr; DUP1 SLOAD; rhs; combine; SWAP1; SSTORE.
		if err := cg.mappingSlot(lhs); err != nil {
			return err
		}
		e.op(evm.DUP1, evm.SLOAD)
		if err := cg.expr(s.RHS); err != nil {
			return err
		}
		cg.emitCompound(s.Op)
		e.op(evm.SwapN(1), evm.SSTORE)
		return nil
	}
	return fmt.Errorf("minisol:%d: internal error: unassignable LHS %T", s.Line, s.LHS)
}

// emitCompound combines [cur, rhs] (rhs on top) into cur+rhs or cur-rhs.
func (cg *codegen) emitCompound(op byte) {
	if op == '+' {
		cg.e.op(evm.ADD)
	} else {
		cg.e.op(evm.SwapN(1), evm.SUB)
	}
}

// mappingSlot leaves the storage address of the indexed element on the stack.
// Mappings use keccak256(pad32(key) ++ pad32(slotWord)) per nesting level;
// fixed arrays use baseSlot + index (the Solidity layouts).
func (cg *codegen) mappingSlot(x *IndexExpr) error {
	e := cg.e
	if base, ok := x.Base.(*IdentExpr); ok && base.Type().Kind == TyArray {
		if err := cg.expr(x.Key); err != nil {
			return err
		}
		e.pushInt(uint64(base.Binding.StateVar.Slot))
		e.op(evm.ADD)
		return nil
	}
	// Key word at scratch+0.
	if err := cg.expr(x.Key); err != nil {
		return err
	}
	e.pushInt(scratchBase)
	e.op(evm.MSTORE)
	// Slot word at scratch+32: constant slot for a state mapping, or the
	// recursively computed address for a nested mapping.
	switch base := x.Base.(type) {
	case *IdentExpr:
		e.pushInt(uint64(base.Binding.StateVar.Slot))
	case *IndexExpr:
		if err := cg.mappingSlot(base); err != nil {
			return err
		}
		// The recursive call clobbers scratch+0; rewrite the key after it.
		e.pushInt(scratchBase + 32)
		e.op(evm.MSTORE)
		if err := cg.expr(x.Key); err != nil {
			return err
		}
		e.pushInt(scratchBase)
		e.op(evm.MSTORE)
		e.pushInt(64)
		e.pushInt(scratchBase)
		e.op(evm.SHA3)
		return nil
	default:
		return fmt.Errorf("minisol: internal error: mapping base %T", x.Base)
	}
	e.pushInt(scratchBase + 32)
	e.op(evm.MSTORE)
	e.pushInt(64)
	e.pushInt(scratchBase)
	e.op(evm.SHA3)
	return nil
}

// internalCall stores arguments into the callee frame, jumps, and optionally
// loads the return value.
func (cg *codegen) internalCall(call *CallExpr, wantValue bool) error {
	if cg.inCtor {
		return fmt.Errorf("minisol:%d: internal calls are not supported in constructors", call.Line)
	}
	e := cg.e
	callee := call.Target
	for i, a := range call.Args {
		if err := cg.expr(a); err != nil {
			return err
		}
		e.pushInt(uint64(cg.frameBase[callee.Name] + 32*i))
		e.op(evm.MSTORE)
	}
	ret := e.fresh("ret")
	e.pushLabel(ret)
	e.pushLabel("fn_" + callee.Name)
	e.op(evm.JUMP)
	e.label(ret)
	if wantValue {
		if callee.Ret == nil {
			return fmt.Errorf("minisol:%d: internal error: void call used as value", call.Line)
		}
		e.pushInt(uint64(cg.retCell[callee.Name]))
		e.op(evm.MLOAD)
	}
	return nil
}

// --- expressions ---

func (cg *codegen) expr(x Expr) error {
	e := cg.e
	switch x := x.(type) {
	case *NumberExpr:
		v, err := parseNumber(x.Text)
		if err != nil {
			return fmt.Errorf("minisol:%d: %v", x.Line, err)
		}
		e.push(v)
		return nil
	case *BoolExpr:
		if x.Value {
			e.pushInt(1)
		} else {
			e.pushInt(0)
		}
		return nil
	case *IdentExpr:
		b := x.Binding
		switch b.Kind {
		case BindLocal, BindParam:
			e.pushInt(cg.cellAddr(b))
			e.op(evm.MLOAD)
		case BindState:
			e.pushInt(uint64(b.StateVar.Slot))
			e.op(evm.SLOAD)
		}
		return nil
	case *MsgExpr:
		if x.Field == "sender" {
			e.op(evm.CALLER)
		} else {
			e.op(evm.CALLVALUE)
		}
		return nil
	case *BlockExpr:
		if x.Field == "number" {
			e.op(evm.NUMBER)
		} else {
			e.op(evm.TIMESTAMP)
		}
		return nil
	case *ThisExpr:
		e.op(evm.ADDRESS)
		return nil
	case *IndexExpr:
		if err := cg.mappingSlot(x); err != nil {
			return err
		}
		e.op(evm.SLOAD)
		return nil
	case *BinaryExpr:
		return cg.binary(x)
	case *UnaryExpr:
		if err := cg.expr(x.X); err != nil {
			return err
		}
		if x.Op == TokBang {
			e.op(evm.ISZERO)
		} else { // unary minus: 0 - x
			e.pushInt(0)
			e.op(evm.SUB)
		}
		return nil
	case *CallExpr:
		return cg.builtinCall(x)
	}
	return fmt.Errorf("minisol: internal error: unknown expression %T", x)
}

func parseNumber(text string) (u256.U256, error) {
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		return u256.FromHex(text)
	}
	b, ok := new(big.Int).SetString(text, 10)
	if !ok {
		return u256.Zero, fmt.Errorf("bad number literal %q", text)
	}
	if b.BitLen() > 256 {
		return u256.Zero, fmt.Errorf("number literal %q exceeds 256 bits", text)
	}
	return u256.FromBig(b), nil
}

func (cg *codegen) binary(x *BinaryExpr) error {
	e := cg.e
	if err := cg.expr(x.L); err != nil {
		return err
	}
	if err := cg.expr(x.R); err != nil {
		return err
	}
	// Stack: [L, R] with R on top.
	switch x.Op {
	case TokPlus:
		e.op(evm.ADD)
	case TokStar:
		e.op(evm.MUL)
	case TokMinus:
		e.op(evm.SwapN(1), evm.SUB)
	case TokSlash:
		e.op(evm.SwapN(1), evm.DIV)
	case TokPercent:
		e.op(evm.SwapN(1), evm.MOD)
	case TokAmp, TokAndAnd:
		e.op(evm.AND)
	case TokPipe, TokOrOr:
		e.op(evm.OR)
	case TokCaret:
		e.op(evm.XOR)
	case TokShl:
		e.op(evm.SHL) // SHL(shift=R, value=L)
	case TokShr:
		e.op(evm.SHR)
	case TokEq:
		e.op(evm.EQ)
	case TokNeq:
		e.op(evm.EQ, evm.ISZERO)
	case TokLt:
		e.op(evm.SwapN(1), evm.LT)
	case TokGt:
		e.op(evm.SwapN(1), evm.GT)
	case TokLe:
		e.op(evm.SwapN(1), evm.GT, evm.ISZERO)
	case TokGe:
		e.op(evm.SwapN(1), evm.LT, evm.ISZERO)
	default:
		return fmt.Errorf("minisol:%d: internal error: unknown binary op %d", x.Line, x.Op)
	}
	return nil
}

func (cg *codegen) builtinCall(x *CallExpr) error {
	e := cg.e
	switch x.Builtin {
	case "balance":
		if err := cg.expr(x.Args[0]); err != nil {
			return err
		}
		e.op(evm.BALANCE)
		return nil
	case "keccak256":
		if err := cg.expr(x.Args[0]); err != nil {
			return err
		}
		e.pushInt(scratchBase)
		e.op(evm.MSTORE)
		e.pushInt(32)
		e.pushInt(scratchBase)
		e.op(evm.SHA3)
		return nil
	case "address":
		if err := cg.expr(x.Args[0]); err != nil {
			return err
		}
		if x.Args[0].Type().Kind == TyUint {
			e.push(addressMask)
			e.op(evm.AND)
		}
		return nil
	case "uint256":
		return cg.expr(x.Args[0])
	case "staticcall_unchecked", "staticcall_checked":
		// The 0x-exchange pattern: call a wallet contract with a 32-byte
		// input, writing the output over the input buffer.
		if err := cg.expr(x.Args[1]); err != nil { // input word
			return err
		}
		e.pushInt(callBuf)
		e.op(evm.MSTORE)
		e.pushInt(32)                              // outLen
		e.pushInt(callBuf)                         // outOff: over the input
		e.pushInt(32)                              // inLen
		e.pushInt(callBuf)                         // inOff
		if err := cg.expr(x.Args[0]); err != nil { // wallet address
			return err
		}
		e.op(evm.GAS, evm.STATICCALL)
		if x.Builtin == "staticcall_checked" {
			// The fixed pattern: on failure or a short return, clear the
			// buffer instead of reading the stale input back.
			ok := e.fresh("scok")
			e.op(evm.ISZERO) // [fail]
			e.pushInt(32)
			e.op(evm.RETURNDATASIZE, evm.LT) // [fail, rds<32]
			e.op(evm.OR, evm.ISZERO)
			e.pushLabel(ok)
			e.op(evm.JUMPI)
			e.pushInt(0)
			e.pushInt(callBuf)
			e.op(evm.MSTORE)
			e.label(ok)
		} else {
			e.op(evm.POP) // success flag dropped, no checks: the bug
		}
		e.pushInt(callBuf)
		e.op(evm.MLOAD) // "isValid := mload(cdStart)"
		return nil
	}
	if x.Target != nil {
		return fmt.Errorf("minisol:%d: internal error: unhoisted internal call to %q", x.Line, x.Name)
	}
	return fmt.Errorf("minisol:%d: internal error: unknown builtin %q", x.Line, x.Name)
}
