package minisol

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a single contract.
func Parse(src string) (*Contract, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.parseContract()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("trailing input after contract")
	}
	return c, nil
}

func (p *parser) peek() Token  { return p.toks[p.pos] }
func (p *parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("minisol:%s: %s", t.Pos(), fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind TokKind, what string) (Token, error) {
	t := p.peek()
	if t.Kind != kind {
		return t, p.errf("expected %s, found %s", what, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != TokIdent || t.Text != kw {
		return p.errf("expected %q, found %s", kw, t)
	}
	p.next()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && t.Text == kw
}

func (p *parser) parseContract() (*Contract, error) {
	if err := p.expectKeyword("contract"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "contract name")
	if err != nil {
		return nil, err
	}
	if keywords[name.Text] {
		return nil, p.errf("keyword %q cannot name a contract", name.Text)
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	c := &Contract{Name: name.Text}
	slot := 0
	for p.peek().Kind != TokRBrace {
		switch {
		case p.atKeyword("function"):
			fn, err := p.parseFunction()
			if err != nil {
				return nil, err
			}
			c.Functions = append(c.Functions, fn)
		case p.atKeyword("constructor"):
			fn, err := p.parseConstructor()
			if err != nil {
				return nil, err
			}
			if c.Ctor != nil {
				return nil, p.errf("duplicate constructor")
			}
			c.Ctor = fn
		case p.atKeyword("modifier"):
			m, err := p.parseModifier()
			if err != nil {
				return nil, err
			}
			c.Modifiers = append(c.Modifiers, m)
		case p.atKeyword("event"):
			// Event declarations are accepted and ignored (no logs needed).
			if err := p.skipThrough(TokSemi); err != nil {
				return nil, err
			}
		default:
			v, err := p.parseStateVar()
			if err != nil {
				return nil, err
			}
			v.Slot = slot
			slot += v.Type.Slots()
			c.Vars = append(c.Vars, v)
		}
	}
	p.next() // '}'
	return c, nil
}

func (p *parser) skipThrough(kind TokKind) error {
	for {
		t := p.next()
		if t.Kind == kind {
			return nil
		}
		if t.Kind == TokEOF {
			return p.errf("unexpected end of input")
		}
	}
}

func (p *parser) parseType() (*Type, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	// Fixed-size array suffix: uint256[8].
	if p.peek().Kind == TokLBracket {
		if !base.Elementary() {
			return nil, p.errf("arrays of %s are not supported", base)
		}
		p.next()
		num, err := p.expect(TokNumber, "array length")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.Text)
		if err != nil || n < 1 || n > 1024 {
			return nil, p.errf("bad array length %q", num.Text)
		}
		if _, err := p.expect(TokRBracket, "']'"); err != nil {
			return nil, err
		}
		return &Type{Kind: TyArray, Val: base, Len: n}, nil
	}
	return base, nil
}

func (p *parser) parseBaseType() (*Type, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf("expected a type, found %s", t)
	}
	switch t.Text {
	case "uint256", "uint":
		p.next()
		return Uint256T, nil
	case "address":
		p.next()
		return AddressT, nil
	case "bool":
		p.next()
		return BoolT, nil
	case "mapping":
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		key, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if !key.Elementary() {
			return nil, p.errf("mapping keys must be elementary")
		}
		if _, err := p.expect(TokArrow, "'=>'"); err != nil {
			return nil, err
		}
		val, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return &Type{Kind: TyMapping, Key: key, Val: val}, nil
	}
	return nil, p.errf("unknown type %q", t.Text)
}

func (p *parser) parseStateVar() (*StateVar, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "variable name")
	if err != nil {
		return nil, err
	}
	if keywords[name.Text] {
		return nil, p.errf("keyword %q cannot name a variable", name.Text)
	}
	// Optional visibility keyword, ignored for state vars (no auto-getters).
	if p.atKeyword("public") || p.atKeyword("internal") {
		p.next()
	}
	v := &StateVar{Name: name.Text, Type: ty}
	if p.peek().Kind == TokAssign {
		p.next()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		v.Init = init
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return v, nil
}

func (p *parser) parseModifier() (*Modifier, error) {
	line := p.peek().Line
	p.next() // 'modifier'
	name, err := p.expect(TokIdent, "modifier name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, "')' (modifier parameters are not supported)"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	count := countPlaceholders(body)
	if count != 1 {
		return nil, fmt.Errorf("minisol:%d: modifier %s must contain exactly one `_;` (found %d)", line, name.Text, count)
	}
	return &Modifier{Name: name.Text, Body: body, Line: line}, nil
}

func countPlaceholders(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *PlaceholderStmt:
			n++
		case *IfStmt:
			n += countPlaceholders(s.Then) + countPlaceholders(s.Else)
		case *WhileStmt:
			n += countPlaceholders(s.Body)
		}
	}
	return n
}

func (p *parser) parseConstructor() (*Function, error) {
	line := p.peek().Line
	p.next() // 'constructor'
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, "')' (constructor parameters are not supported)"); err != nil {
		return nil, err
	}
	for p.atKeyword("public") || p.atKeyword("payable") {
		p.next()
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Function{Name: "", Body: body, Public: false, Line: line}, nil
}

func (p *parser) parseFunction() (*Function, error) {
	line := p.peek().Line
	p.next() // 'function'
	name, err := p.expect(TokIdent, "function name")
	if err != nil {
		return nil, err
	}
	if keywords[name.Text] {
		return nil, p.errf("keyword %q cannot name a function", name.Text)
	}
	fn := &Function{Name: name.Text, Line: line}
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokComma, "','"); err != nil {
				return nil, err
			}
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if !ty.Elementary() {
			return nil, p.errf("%s parameters are not supported", ty)
		}
		pname, err := p.expect(TokIdent, "parameter name")
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, &Param{Name: pname.Text, Type: ty})
	}
	p.next() // ')'
	// Attributes: visibility, payable/view, modifiers, returns.
	seenVisibility := false
	for {
		switch {
		case p.atKeyword("public"):
			p.next()
			fn.Public = true
			seenVisibility = true
		case p.atKeyword("internal"):
			p.next()
			seenVisibility = true
		case p.atKeyword("payable"):
			p.next()
			fn.Payable = true
		case p.atKeyword("view"):
			p.next()
		case p.atKeyword("returns"):
			p.next()
			if _, err := p.expect(TokLParen, "'('"); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if !ty.Elementary() {
				return nil, p.errf("%s returns are not supported", ty)
			}
			fn.Ret = ty
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
		case p.peek().Kind == TokIdent && !keywords[p.peek().Text]:
			fn.Modifiers = append(fn.Modifiers, p.next().Text)
		default:
			goto attrsDone
		}
	}
attrsDone:
	_ = seenVisibility // Solidity <0.5 defaulted to public; we default private.
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if countPlaceholders(body) != 0 {
		return nil, fmt.Errorf("minisol:%d: `_;` is only allowed in modifiers", line)
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // '}'
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	line := t.Line
	switch {
	case t.Kind == TokUnderscore:
		p.next()
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &PlaceholderStmt{Line: line}, nil
	case p.atKeyword("if"):
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		thenB, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		var elseB []Stmt
		if p.atKeyword("else") {
			p.next()
			elseB, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: thenB, Else: elseB, Line: line}, nil
	case p.atKeyword("while"):
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case p.atKeyword("require"), p.atKeyword("assert"):
		isAssert := t.Text == "assert"
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Optional message argument, ignored.
		if p.peek().Kind == TokComma {
			p.next()
			if _, err := p.expect(TokString, "revert message string"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &RequireStmt{Cond: cond, IsAssert: isAssert, Line: line}, nil
	case p.atKeyword("revert"):
		p.next()
		if p.peek().Kind == TokLParen {
			p.next()
			if p.peek().Kind == TokString {
				p.next()
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &RevertStmt{Line: line}, nil
	case p.atKeyword("return"):
		p.next()
		var val Expr
		if p.peek().Kind != TokSemi {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: val, Line: line}, nil
	case p.atKeyword("selfdestruct"):
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &SelfdestructStmt{Beneficiary: b, Line: line}, nil
	case p.atKeyword("emit"):
		// `emit Name(args);` accepted and discarded.
		if err := p.skipThrough(TokSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: &BoolExpr{Value: true, Line: line}, Line: line}, nil
	case t.Kind == TokIdent && t.Text == "delegatecall":
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		target, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &DelegatecallStmt{Target: target, Line: line}, nil
	case t.Kind == TokIdent && t.Text == "send":
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma, "','"); err != nil {
			return nil, err
		}
		amt, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &TransferStmt{To: to, Amount: amt, Line: line}, nil
	case t.Kind == TokIdent && isTypeName(t.Text) && p.peek2().Kind == TokIdent:
		// Local declaration: `uint256 x = e;`
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "variable name")
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.peek().Kind == TokAssign {
			p.next()
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &DeclStmt{Name: name.Text, Type: ty, Init: init, Line: line}, nil
	}
	// Assignment or expression statement.
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case TokAssign, TokPlusAssign, TokMinusAssign:
		opTok := p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		op := byte('=')
		if opTok.Kind == TokPlusAssign {
			op = '+'
		} else if opTok.Kind == TokMinusAssign {
			op = '-'
		}
		return &AssignStmt{LHS: lhs, Op: op, RHS: rhs, Line: line}, nil
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: lhs, Line: line}, nil
}

func isTypeName(s string) bool {
	switch s {
	case "uint256", "uint", "address", "bool", "mapping":
		return true
	}
	return false
}

func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.peek().Kind == TokLBrace {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// --- Expressions (precedence climbing) ---

// Binding powers, loosest first: || && | ^ & ==/!= <cmp> <</>> +- */%.
func binPrec(k TokKind) int {
	switch k {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokPipe:
		return 3
	case TokCaret:
		return 4
	case TokAmp:
		return 5
	case TokEq, TokNeq:
		return 6
	case TokLt, TokGt, TokLe, TokGe:
		return 7
	case TokShl, TokShr:
		return 8
	case TokPlus, TokMinus:
		return 9
	case TokStar, TokSlash, TokPercent:
		return 10
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		prec := binPrec(k)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		line := p.peek().Line
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: k, L: lhs, R: rhs, Line: line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokBang || t.Kind == TokMinus {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Line: t.Line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokLBracket {
		line := p.peek().Line
		p.next()
		key, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket, "']'"); err != nil {
			return nil, err
		}
		x = &IndexExpr{Base: x, Key: key, Line: line}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberExpr{Text: t.Text, Line: t.Line}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		switch t.Text {
		case "true", "false":
			p.next()
			return &BoolExpr{Value: t.Text == "true", Line: t.Line}, nil
		case "msg":
			p.next()
			if _, err := p.expect(TokDot, "'.'"); err != nil {
				return nil, err
			}
			f, err := p.expect(TokIdent, "msg field")
			if err != nil {
				return nil, err
			}
			if f.Text != "sender" && f.Text != "value" {
				return nil, p.errf("unknown msg field %q", f.Text)
			}
			return &MsgExpr{Field: f.Text, Line: t.Line}, nil
		case "block":
			p.next()
			if _, err := p.expect(TokDot, "'.'"); err != nil {
				return nil, err
			}
			f, err := p.expect(TokIdent, "block field")
			if err != nil {
				return nil, err
			}
			if f.Text != "number" && f.Text != "timestamp" {
				return nil, p.errf("unknown block field %q", f.Text)
			}
			return &BlockExpr{Field: f.Text, Line: t.Line}, nil
		case "this":
			p.next()
			return &ThisExpr{Line: t.Line}, nil
		}
		// Call or plain identifier.
		p.next()
		if p.peek().Kind == TokLParen {
			p.next()
			call := &CallExpr{Name: t.Text, Line: t.Line}
			for p.peek().Kind != TokRParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokComma, "','"); err != nil {
						return nil, err
					}
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			p.next() // ')'
			return call, nil
		}
		return &IdentExpr{Name: t.Text, Line: t.Line}, nil
	}
	return nil, p.errf("expected an expression, found %s", t)
}
