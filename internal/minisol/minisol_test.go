package minisol_test

import (
	"strings"
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/crypto"
	"ethainter/internal/evm"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

// deploy compiles src and deploys it from a fresh account, returning the
// chain, the deployer, and the contract address.
func deploy(t *testing.T, src string) (*chain.Chain, evm.Address, evm.Address, *minisol.Compiled) {
	t.Helper()
	out, err := minisol.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c := chain.New()
	deployer := c.NewAccount(u256.FromUint64(1_000_000))
	r := c.Deploy(deployer, out.Deploy, u256.Zero)
	if r.Err != nil {
		t.Fatalf("deploy: %v", r.Err)
	}
	return c, deployer, r.Created, out
}

// call invokes a public function and fails the test on revert.
func call(t *testing.T, c *chain.Chain, from, to evm.Address, out *minisol.Compiled, fn string, args ...u256.U256) *chain.Receipt {
	t.Helper()
	abi, ok := minisol.FindABI(out.ABI, fn)
	if !ok {
		t.Fatalf("no ABI entry for %q", fn)
	}
	r := c.Call(from, to, abi.MustEncodeCall(args...), u256.Zero)
	return r
}

func mustWord(t *testing.T, r *chain.Receipt) u256.U256 {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("call failed: %v", r.Err)
	}
	w, err := minisol.DecodeReturnWord(r.Output)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCompileAndRunToken(t *testing.T) {
	c, deployer, token, out := deploy(t, minisol.SafeTokenSource)
	alice := c.NewAccount(u256.FromUint64(1000))
	bob := c.NewAccount(u256.FromUint64(1000))

	// Deployer got the initial supply in the constructor.
	if got := mustWord(t, call(t, c, deployer, token, out, "balanceOf", deployer.Word())); got != u256.FromUint64(1_000_000) {
		t.Fatalf("deployer balance = %s", got)
	}
	// Transfer to alice.
	r := call(t, c, deployer, token, out, "transfer", alice.Word(), u256.FromUint64(500))
	if mustWord(t, r) != u256.One {
		t.Fatal("transfer should return true")
	}
	if got := mustWord(t, call(t, c, alice, token, out, "balanceOf", alice.Word())); got != u256.FromUint64(500) {
		t.Fatalf("alice balance = %s", got)
	}
	// Overdraft reverts.
	if r := call(t, c, alice, token, out, "transfer", bob.Word(), u256.FromUint64(501)); r.Err == nil {
		t.Fatal("overdraft transfer should revert")
	}
	// approve / transferFrom through the nested mapping.
	call(t, c, alice, token, out, "approve", bob.Word(), u256.FromUint64(200))
	r = call(t, c, bob, token, out, "transferFrom", alice.Word(), bob.Word(), u256.FromUint64(150))
	if r.Err != nil {
		t.Fatalf("transferFrom: %v", r.Err)
	}
	if got := mustWord(t, call(t, c, bob, token, out, "balanceOf", bob.Word())); got != u256.FromUint64(150) {
		t.Fatalf("bob balance = %s", got)
	}
	// Allowance was decremented: a second pull over the limit reverts.
	if r := call(t, c, bob, token, out, "transferFrom", alice.Word(), bob.Word(), u256.FromUint64(100)); r.Err == nil {
		t.Fatal("transferFrom beyond allowance should revert")
	}
	// Owner-guarded mint: non-owner reverts, owner succeeds.
	if r := call(t, c, alice, token, out, "mint", alice.Word(), u256.FromUint64(1)); r.Err == nil {
		t.Fatal("mint by non-owner should revert")
	}
	if r := call(t, c, deployer, token, out, "mint", alice.Word(), u256.FromUint64(7)); r.Err != nil {
		t.Fatalf("mint by owner: %v", r.Err)
	}
	if got := mustWord(t, call(t, c, alice, token, out, "balanceOf", alice.Word())); got != u256.FromUint64(350+7) {
		t.Fatalf("alice post-mint balance = %s", got)
	}
	// Guarded kill: attacker fails, owner succeeds.
	if r := call(t, c, alice, token, out, "kill"); r.Err == nil {
		t.Fatal("kill by non-owner should revert")
	}
	if r := call(t, c, deployer, token, out, "kill"); r.Err != nil {
		t.Fatalf("kill by owner: %v", r.Err)
	}
	if !c.IsDestroyed(token) {
		t.Fatal("token should be destroyed by owner kill")
	}
}

// The paper's Section 2 attack, executed end to end: the mis-guarded
// referAdmin lets a fresh attacker escalate to admin, become owner, and
// destroy the contract, receiving its balance.
func TestVictimCompositeAttack(t *testing.T) {
	c, _, victim, out := deploy(t, minisol.VictimSource)
	c.State.AddBalance(victim, u256.FromUint64(9999))
	attacker := c.NewAccount(u256.FromUint64(100))

	// kill() straight away must fail: attacker is not an admin.
	if r := call(t, c, attacker, victim, out, "kill"); r.Err == nil {
		t.Fatal("premature kill should revert")
	}
	// referAdmin before registering must fail: not a user yet.
	if r := call(t, c, attacker, victim, out, "referAdmin", attacker.Word()); r.Err == nil {
		t.Fatal("referAdmin before registerSelf should revert")
	}

	steps := []struct {
		fn   string
		args []u256.U256
	}{
		{"registerSelf", nil},
		{"referAdmin", []u256.U256{attacker.Word()}},
		{"changeOwner", []u256.U256{attacker.Word()}},
		{"kill", nil},
	}
	for _, s := range steps {
		if r := call(t, c, attacker, victim, out, s.fn, s.args...); r.Err != nil {
			t.Fatalf("attack step %s failed: %v", s.fn, r.Err)
		}
	}
	if !c.IsDestroyed(victim) {
		t.Fatal("victim should be destroyed")
	}
	if got := c.State.GetBalance(attacker); got != u256.FromUint64(100+9999) {
		t.Fatalf("attacker balance = %s, want the victim's funds", got)
	}
}

func TestTaintedOwnerExploit(t *testing.T) {
	c, _, target, out := deploy(t, minisol.TaintedOwnerSource)
	attacker := c.NewAccount(u256.FromUint64(10))
	// kill is a no-op while attacker is not the owner (if-guard, no revert).
	if r := call(t, c, attacker, target, out, "kill"); r.Err != nil {
		t.Fatalf("kill: %v", r.Err)
	}
	if c.IsDestroyed(target) {
		t.Fatal("destroyed too early")
	}
	call(t, c, attacker, target, out, "initOwner", attacker.Word())
	if r := call(t, c, attacker, target, out, "kill"); r.Err != nil {
		t.Fatalf("kill after initOwner: %v", r.Err)
	}
	if !c.IsDestroyed(target) {
		t.Fatal("contract should be destroyed after owner tainting")
	}
}

func TestDelegatecallRunsForeignCodeInContractState(t *testing.T) {
	c, _, migrator, out := deploy(t, minisol.TaintedDelegatecallSource)
	attacker := c.NewAccount(u256.FromUint64(10))
	// Attacker contract: selfdestruct(origin) — run via delegatecall it
	// destroys the *migrator*.
	evil := c.DeployRuntime(evm.MustAssemble(`
		ORIGIN
		SELFDESTRUCT
	`), u256.Zero)
	r := call(t, c, attacker, migrator, out, "migrate", evil.Word())
	if r.Err != nil {
		t.Fatalf("migrate: %v", r.Err)
	}
	if !c.IsDestroyed(migrator) {
		t.Fatal("delegatecall selfdestruct must destroy the caller contract")
	}
}

func TestUncheckedStaticcallReflectsInput(t *testing.T) {
	c, _, exch, out := deploy(t, minisol.UncheckedStaticcallSource)
	user := c.NewAccount(u256.FromUint64(10))
	// A wallet with no code returns nothing: the input word is read back.
	emptyWallet := c.DeployRuntime(evm.MustAssemble("STOP"), u256.Zero)
	hash := u256.FromUint64(0x1234)
	got := mustWord(t, call(t, c, user, exch, out, "isValidSignature", emptyWallet.Word(), hash))
	if got != hash {
		t.Fatalf("isValidSignature = %s, want the reflected input %s", got, hash)
	}
	// settle() demands == 1, so pass 1 as the "hash": forged approval.
	if r := call(t, c, user, exch, out, "settle", emptyWallet.Word(), u256.One); r.Err != nil {
		t.Fatalf("settle forged: %v", r.Err)
	}
}

func TestInternalCallsAndReturns(t *testing.T) {
	src := `
contract Math {
    uint256 sink;

    function addmul(uint256 a, uint256 b, uint256 c) internal returns (uint256) {
        uint256 s = a + b;
        return s * c;
    }
    function twice(uint256 x) internal returns (uint256) {
        return addmul(x, x, 1);
    }
    function compute(uint256 x) public returns (uint256) {
        uint256 r = addmul(x, 2, 3) + twice(10);
        sink = r;
        return r;
    }
    function stored() public returns (uint256) { return sink; }
}`
	c, _, addr, out := deploy(t, src)
	user := c.NewAccount(u256.FromUint64(10))
	// (5+2)*3 + (10+10)*1 = 21 + 20 = 41
	got := mustWord(t, call(t, c, user, addr, out, "compute", u256.FromUint64(5)))
	if got != u256.FromUint64(41) {
		t.Fatalf("compute(5) = %s, want 41", got)
	}
	if got := mustWord(t, call(t, c, user, addr, out, "stored")); got != u256.FromUint64(41) {
		t.Fatalf("stored = %s", got)
	}
}

func TestWhileLoopAndLocals(t *testing.T) {
	src := `
contract Loop {
    function sum(uint256 n) public returns (uint256) {
        uint256 acc = 0;
        uint256 i = 1;
        while (i <= n) {
            acc += i;
            i += 1;
        }
        return acc;
    }
}`
	c, _, addr, out := deploy(t, src)
	user := c.NewAccount(u256.FromUint64(10))
	if got := mustWord(t, call(t, c, user, addr, out, "sum", u256.FromUint64(10))); got != u256.FromUint64(55) {
		t.Fatalf("sum(10) = %s", got)
	}
	if got := mustWord(t, call(t, c, user, addr, out, "sum", u256.Zero)); !got.IsZero() {
		t.Fatalf("sum(0) = %s", got)
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
contract Cmp {
    function classify(uint256 x) public returns (uint256) {
        if (x < 10) { return 1; }
        else {
            if (x == 10) { return 2; }
        }
        return 3;
    }
    function logic(bool a, bool b) public returns (uint256) {
        if (a && !b) { return 1; }
        if (a || b) { return 2; }
        return 0;
    }
}`
	c, _, addr, out := deploy(t, src)
	u := c.NewAccount(u256.FromUint64(10))
	cases := map[uint64]uint64{5: 1, 10: 2, 11: 3}
	for in, want := range cases {
		if got := mustWord(t, call(t, c, u, addr, out, "classify", u256.FromUint64(in))); got != u256.FromUint64(want) {
			t.Errorf("classify(%d) = %s, want %d", in, got, want)
		}
	}
	if got := mustWord(t, call(t, c, u, addr, out, "logic", u256.One, u256.Zero)); got != u256.One {
		t.Errorf("logic(true,false) = %s", got)
	}
	if got := mustWord(t, call(t, c, u, addr, out, "logic", u256.Zero, u256.One)); got != u256.FromUint64(2) {
		t.Errorf("logic(false,true) = %s", got)
	}
	if got := mustWord(t, call(t, c, u, addr, out, "logic", u256.Zero, u256.Zero)); !got.IsZero() {
		t.Errorf("logic(false,false) = %s", got)
	}
}

func TestArithmeticOperators(t *testing.T) {
	src := `
contract Ops {
    function f(uint256 a, uint256 b) public returns (uint256) {
        return ((a - b) * 3 + a / b) % 100;
    }
    function shifts(uint256 a) public returns (uint256) {
        return (a << 4) | (a >> 1) ^ 5 & 7;
    }
}`
	c, _, addr, out := deploy(t, src)
	u := c.NewAccount(u256.FromUint64(10))
	// ((20-3)*3 + 20/3) % 100 = (51+6)%100 = 57
	if got := mustWord(t, call(t, c, u, addr, out, "f", u256.FromUint64(20), u256.FromUint64(3))); got != u256.FromUint64(57) {
		t.Fatalf("f = %s", got)
	}
	// (6<<4) | (6>>1) ^ (5&7) = 96 | (3 ^ 5) = 96|6 = 102
	if got := mustWord(t, call(t, c, u, addr, out, "shifts", u256.FromUint64(6))); got != u256.FromUint64(102) {
		t.Fatalf("shifts = %s", got)
	}
}

func TestPayableAndNonPayable(t *testing.T) {
	src := `
contract Pay {
    uint256 received;

    function depositIt() public payable {
        received += msg.value;
    }
    function plain() public {}
    function got() public returns (uint256) { return received; }
}`
	c, _, addr, out := deploy(t, src)
	user := c.NewAccount(u256.FromUint64(1000))
	abi, _ := minisol.FindABI(out.ABI, "depositIt")
	if r := c.Call(user, addr, abi.MustEncodeCall(), u256.FromUint64(77)); r.Err != nil {
		t.Fatalf("payable deposit: %v", r.Err)
	}
	if got := mustWord(t, call(t, c, user, addr, out, "got")); got != u256.FromUint64(77) {
		t.Fatalf("received = %s", got)
	}
	plain, _ := minisol.FindABI(out.ABI, "plain")
	if r := c.Call(user, addr, plain.MustEncodeCall(), u256.FromUint64(1)); r.Err == nil {
		t.Fatal("sending value to non-payable must revert")
	}
}

func TestTransferBuiltin(t *testing.T) {
	src := `
contract Bank {
    mapping(address => uint256) deposits;

    function deposit() public payable {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        send(msg.sender, amount);
    }
}`
	c, _, bank, out := deploy(t, src)
	user := c.NewAccount(u256.FromUint64(1000))
	dep, _ := minisol.FindABI(out.ABI, "deposit")
	if r := c.Call(user, bank, dep.MustEncodeCall(), u256.FromUint64(300)); r.Err != nil {
		t.Fatalf("deposit: %v", r.Err)
	}
	if r := call(t, c, user, bank, out, "withdraw", u256.FromUint64(120)); r.Err != nil {
		t.Fatalf("withdraw: %v", r.Err)
	}
	if got := c.State.GetBalance(user); got != u256.FromUint64(1000-300+120) {
		t.Fatalf("user balance = %s", got)
	}
	if r := call(t, c, user, bank, out, "withdraw", u256.FromUint64(500)); r.Err == nil {
		t.Fatal("over-withdraw should revert")
	}
}

func TestAssertCompilesToInvalid(t *testing.T) {
	src := `
contract A {
    function check(uint256 x) public returns (uint256) {
        assert(x != 0);
        return 100 / x;
    }
}`
	c, _, addr, out := deploy(t, src)
	u := c.NewAccount(u256.FromUint64(10))
	if got := mustWord(t, call(t, c, u, addr, out, "check", u256.FromUint64(4))); got != u256.FromUint64(25) {
		t.Fatalf("check(4) = %s", got)
	}
	r := call(t, c, u, addr, out, "check", u256.Zero)
	if r.Err == nil {
		t.Fatal("assert(0) should fail")
	}
}

func TestStateVarInitializers(t *testing.T) {
	src := `
contract Init {
    uint256 cap = 5000;
    bool open = true;
    address root = address(0x1234);

    function getCap() public returns (uint256) { return cap; }
    function isOpen() public returns (uint256) { if (open) { return 1; } return 0; }
    function getRoot() public returns (address) { return root; }
}`
	c, _, addr, out := deploy(t, src)
	u := c.NewAccount(u256.FromUint64(10))
	if got := mustWord(t, call(t, c, u, addr, out, "getCap")); got != u256.FromUint64(5000) {
		t.Fatalf("cap = %s", got)
	}
	if got := mustWord(t, call(t, c, u, addr, out, "isOpen")); got != u256.One {
		t.Fatalf("open = %s", got)
	}
	if got := mustWord(t, call(t, c, u, addr, out, "getRoot")); got != u256.FromUint64(0x1234) {
		t.Fatalf("root = %s", got)
	}
}

func TestUnknownSelectorReverts(t *testing.T) {
	c, _, addr, _ := deploy(t, minisol.SafeTokenSource)
	u := c.NewAccount(u256.FromUint64(10))
	r := c.Call(u, addr, []byte{0xde, 0xad, 0xbe, 0xef}, u256.Zero)
	if r.Err == nil {
		t.Fatal("unknown selector should revert")
	}
	// Short calldata also reverts rather than running something arbitrary.
	r = c.Call(u, addr, []byte{0x01}, u256.Zero)
	if r.Err == nil {
		t.Fatal("short calldata should revert")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"type mismatch": `contract X { function f() public { uint256 a = true; } }`,
		"undefined var": `contract X { function f() public { y = 1; } }`,
		"undefined fn":  `contract X { function f() public { g(); } }`,
		"bad arg count": `contract X {
			function g(uint256 a) internal returns (uint256) { return a; }
			function f() public { uint256 x = g(); }
		}`,
		"recursion": `contract X {
			function g(uint256 a) internal returns (uint256) { return g(a); }
			function f() public { uint256 x = g(1); }
		}`,
		"mutual recursion": `contract X {
			function g() internal returns (uint256) { return h(); }
			function h() internal returns (uint256) { return g(); }
			function f() public { uint256 x = g(); }
		}`,
		"placeholder outside modifier": `contract X { function f() public { _; } }`,
		"modifier without placeholder": `contract X { modifier m() { require(true); } function f() public m {} }`,
		"unknown modifier":             `contract X { function f() public nosuch {} }`,
		"call public internally": `contract X {
			function g() public returns (uint256) { return 1; }
			function f() public { uint256 x = g(); }
		}`,
		"mapping comparison": `contract X {
			mapping(address => bool) m;
			function f() public { require(m == m); }
		}`,
		"assign to mapping": `contract X {
			mapping(address => bool) m;
			mapping(address => bool) n;
			function f() public { m = n; }
		}`,
		"bad mapping key": `contract X {
			mapping(address => bool) m;
			function f() public { m[1] = true; }
		}`,
		"non-bool require":   `contract X { function f() public { require(1); } }`,
		"duplicate function": `contract X { function f() public {} function f() public {} }`,
		"duplicate state":    `contract X { uint256 a; uint256 a; }`,
		"return in ctor":     `contract X { constructor() { return; } }`,
		"void as value": `contract X {
			function g() internal {}
			function f() public { uint256 x = g(); }
		}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := minisol.CompileSource(src)
			if err == nil {
				t.Fatalf("expected a compile error")
			}
		})
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := minisol.CompileSource("contract X {\n  function f( public {}\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error should carry line 2 position: %v", err)
	}
}

func TestSelectorMatchesKnownValue(t *testing.T) {
	// kill() has the well-known selector 0x41c0e1b5.
	sel := minisol.SelectorOf("kill()")
	if sel != [4]byte{0x41, 0xc0, 0xe1, 0xb5} {
		t.Fatalf("selector of kill() = %x", sel)
	}
}

func TestKeccakBuiltinMatchesMappingLayout(t *testing.T) {
	// Storing into m[k] (slot 0) then reading storage directly at
	// keccak256(pad(k) ++ pad(0)) must agree.
	src := `
contract M {
    mapping(uint256 => uint256) m;
    function put(uint256 k, uint256 v) public { m[k] = v; }
}`
	c, _, addr, out := deploy(t, src)
	u := c.NewAccount(u256.FromUint64(10))
	k, v := u256.FromUint64(99), u256.FromUint64(1234)
	if r := call(t, c, u, addr, out, "put", k, v); r.Err != nil {
		t.Fatalf("put: %v", r.Err)
	}
	kb, sb := k.Bytes32(), u256.Zero.Bytes32()
	slot := u256.FromBytes32(keccakConcat(kb, sb))
	if got := c.State.GetState(addr, slot); got != v {
		t.Fatalf("storage[hash] = %s, want %s", got, v)
	}
}

func keccakConcat(a, b [32]byte) [32]byte {
	buf := append(append([]byte{}, a[:]...), b[:]...)
	return keccak(buf)
}

func keccak(b []byte) [32]byte { return crypto.Keccak256(b) }

func TestFixedArrays(t *testing.T) {
	src := `
contract Arr {
    uint256 before;
    uint256[4] vals;
    uint256 after;

    function set(uint256 i, uint256 v) public {
        require(i < 4);
        vals[i] = v;
    }
    function get(uint256 i) public returns (uint256) {
        require(i < 4);
        return vals[i];
    }
    function setAfter(uint256 v) public { after = v; }
    function getAfter() public returns (uint256) { return after; }
}`
	c, _, addr, out := deploy(t, src)
	u := c.NewAccount(u256.FromUint64(10))
	for i := uint64(0); i < 4; i++ {
		if r := call(t, c, u, addr, out, "set", u256.FromUint64(i), u256.FromUint64(100+i)); r.Err != nil {
			t.Fatalf("set(%d): %v", i, r.Err)
		}
	}
	for i := uint64(0); i < 4; i++ {
		if got := mustWord(t, call(t, c, u, addr, out, "get", u256.FromUint64(i))); got != u256.FromUint64(100+i) {
			t.Fatalf("get(%d) = %s", i, got)
		}
	}
	// Out of bounds reverts via the explicit check.
	if r := call(t, c, u, addr, out, "set", u256.FromUint64(4), u256.One); r.Err == nil {
		t.Fatal("out-of-bounds set should revert")
	}
	// Array elements land at slots base..base+3; `after` must not clash.
	call(t, c, u, addr, out, "setAfter", u256.FromUint64(777))
	if got := mustWord(t, call(t, c, u, addr, out, "getAfter")); got != u256.FromUint64(777) {
		t.Fatalf("after = %s", got)
	}
	for i := uint64(0); i < 4; i++ {
		if got := c.State.GetState(addr, u256.FromUint64(1+i)); got != u256.FromUint64(100+i) {
			t.Fatalf("slot %d = %s (array must occupy consecutive slots)", 1+i, got)
		}
	}
	if got := c.State.GetState(addr, u256.FromUint64(5)); got != u256.FromUint64(777) {
		t.Fatalf("after slot = %s", got)
	}
}

func TestArrayRestrictions(t *testing.T) {
	bad := map[string]string{
		"array param":    `contract X { function f(uint256[2] a) public {} }`,
		"array return":   `contract X { function f() public returns (uint256[2]) {} }`,
		"array local":    `contract X { function f() public { uint256[2] a; } }`,
		"array init":     `contract X { uint256[2] a = 5; }`,
		"mapping array":  `contract X { mapping(address => uint256[2]) m; }`,
		"array of maps":  `contract X { mapping(address => bool)[3] m; }`,
		"zero length":    `contract X { uint256[0] a; }`,
		"whole-array =":  `contract X { uint256[2] a; uint256[2] b; function f() public { a = b; } }`,
		"bad index type": `contract X { uint256[2] a; function f(address p) public { a[p] = 1; } }`,
	}
	for name, src := range bad {
		if _, err := minisol.CompileSource(src); err == nil {
			t.Errorf("%s: expected a compile error", name)
		}
	}
}

func TestMultipleModifiersCompose(t *testing.T) {
	src := `
contract Multi {
    address owner;
    bool open;
    uint256 hits;
    constructor() { owner = msg.sender; open = true; }
    modifier onlyOwner() { require(msg.sender == owner); _; }
    modifier whenOpen() { require(open); _; hits += 1; }
    function poke() public whenOpen onlyOwner { hits += 10; }
    function close() public onlyOwner { open = false; }
    function getHits() public returns (uint256) { return hits; }
}`
	c, deployer, addr, out := deploy(t, src)
	stranger := c.NewAccount(u256.FromUint64(10))
	// Both guards apply, in order; the trailing modifier code after `_;` runs.
	if r := call(t, c, stranger, addr, out, "poke"); r.Err == nil {
		t.Fatal("stranger must fail the owner modifier")
	}
	if r := call(t, c, deployer, addr, out, "poke"); r.Err != nil {
		t.Fatalf("owner poke: %v", r.Err)
	}
	// hits = 10 (body) + 1 (whenOpen trailer).
	if got := mustWord(t, call(t, c, deployer, addr, out, "getHits")); got != u256.FromUint64(11) {
		t.Fatalf("hits = %s, want 11 (modifier trailer must run)", got)
	}
	call(t, c, deployer, addr, out, "close")
	if r := call(t, c, deployer, addr, out, "poke"); r.Err == nil {
		t.Fatal("poke after close must fail the whenOpen modifier")
	}
}
