package minisol

import (
	"fmt"
	"strings"
)

// Check resolves names, inlines modifiers, type-checks the contract, and
// lowers internal calls to statement position. It mutates the AST in place
// (bindings, types, rewritten bodies) and must run before Compile.
func Check(c *Contract) error {
	ck := &checker{contract: c}
	ck.modifiers = make(map[string]*Modifier, len(c.Modifiers))
	for _, m := range c.Modifiers {
		if _, dup := ck.modifiers[m.Name]; dup {
			return fmt.Errorf("minisol: duplicate modifier %q", m.Name)
		}
		ck.modifiers[m.Name] = m
	}
	ck.functions = make(map[string]*Function, len(c.Functions))
	ck.stateVars = make(map[string]*StateVar, len(c.Vars))
	for _, v := range c.Vars {
		if _, dup := ck.stateVars[v.Name]; dup {
			return fmt.Errorf("minisol: duplicate state variable %q", v.Name)
		}
		ck.stateVars[v.Name] = v
		if v.Type.Kind == TyMapping && !mappingValOK(v.Type.Val) {
			return fmt.Errorf("minisol: mapping %q values must be elementary or mappings", v.Name)
		}
		if v.Init != nil {
			if !v.Type.Elementary() {
				return fmt.Errorf("minisol: %s %q cannot have an initializer", v.Type, v.Name)
			}
			if !isConstExpr(v.Init) {
				return fmt.Errorf("minisol: initializer of %q must be a constant", v.Name)
			}
			ck.scopes = []map[string]*Binding{{}}
			init, _, err := ck.checkExpr(v.Init, false)
			ck.scopes = nil
			if err != nil {
				return err
			}
			if !init.Type().Equal(v.Type) {
				return fmt.Errorf("minisol: cannot initialize %s %q with %s", v.Type, v.Name, init.Type())
			}
			v.Init = init
		}
	}
	for _, fn := range c.Functions {
		if _, dup := ck.functions[fn.Name]; dup {
			return fmt.Errorf("minisol: duplicate function %q", fn.Name)
		}
		if builtinNames[fn.Name] || fn.Name == "delegatecall" || fn.Name == "send" {
			return fmt.Errorf("minisol: function name %q collides with a builtin", fn.Name)
		}
		ck.functions[fn.Name] = fn
	}
	// Inline modifiers, then check each function.
	all := append([]*Function{}, c.Functions...)
	if c.Ctor != nil {
		all = append(all, c.Ctor)
	}
	for _, fn := range all {
		if len(fn.Modifiers) > 0 {
			body, err := ck.inlineModifiers(fn)
			if err != nil {
				return err
			}
			fn.Body = body
			fn.Modifiers = nil
		}
	}
	for _, fn := range all {
		if err := ck.checkFunction(fn); err != nil {
			return err
		}
	}
	if err := ck.rejectRecursion(); err != nil {
		return err
	}
	return nil
}

func isConstExpr(e Expr) bool {
	switch e := e.(type) {
	case *NumberExpr, *BoolExpr:
		return true
	case *CallExpr:
		// address(0)-style constant casts.
		if (e.Name == "address" || e.Name == "uint256") && len(e.Args) == 1 {
			return isConstExpr(e.Args[0])
		}
	}
	return false
}

type checker struct {
	contract  *Contract
	modifiers map[string]*Modifier
	functions map[string]*Function
	stateVars map[string]*StateVar

	// Per-function state.
	fn       *Function
	scopes   []map[string]*Binding
	nextCell int
	tempSeq  int
	calls    map[string]map[string]bool // caller -> callees (for recursion check)
}

// inlineModifiers expands the function's modifier chain around its body,
// deep-copying each modifier body so bindings stay per-function.
func (ck *checker) inlineModifiers(fn *Function) ([]Stmt, error) {
	body := fn.Body
	for i := len(fn.Modifiers) - 1; i >= 0; i-- {
		m, ok := ck.modifiers[fn.Modifiers[i]]
		if !ok {
			return nil, fmt.Errorf("minisol:%d: unknown modifier %q on %s", fn.Line, fn.Modifiers[i], fn.Name)
		}
		body = substitutePlaceholder(copyStmts(m.Body), body)
	}
	return body, nil
}

func substitutePlaceholder(stmts, replacement []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *PlaceholderStmt:
			out = append(out, replacement...)
		case *IfStmt:
			s.Then = substitutePlaceholder(s.Then, replacement)
			s.Else = substitutePlaceholder(s.Else, replacement)
			out = append(out, s)
		case *WhileStmt:
			s.Body = substitutePlaceholder(s.Body, replacement)
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

// copyStmts deep-copies statements (expressions included) so each modifier
// inlining gets fresh nodes.
func copyStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = copyStmt(s)
	}
	return out
}

func copyStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *DeclStmt:
		return &DeclStmt{Name: s.Name, Type: s.Type, Init: copyExpr(s.Init), Line: s.Line}
	case *AssignStmt:
		return &AssignStmt{LHS: copyExpr(s.LHS), Op: s.Op, RHS: copyExpr(s.RHS), Line: s.Line}
	case *IfStmt:
		return &IfStmt{Cond: copyExpr(s.Cond), Then: copyStmts(s.Then), Else: copyStmts(s.Else), Line: s.Line}
	case *WhileStmt:
		return &WhileStmt{Cond: copyExpr(s.Cond), Body: copyStmts(s.Body), Line: s.Line}
	case *RequireStmt:
		return &RequireStmt{Cond: copyExpr(s.Cond), IsAssert: s.IsAssert, Line: s.Line}
	case *RevertStmt:
		return &RevertStmt{Line: s.Line}
	case *ReturnStmt:
		return &ReturnStmt{Value: copyExpr(s.Value), Line: s.Line}
	case *ExprStmt:
		return &ExprStmt{X: copyExpr(s.X), Line: s.Line}
	case *SelfdestructStmt:
		return &SelfdestructStmt{Beneficiary: copyExpr(s.Beneficiary), Line: s.Line}
	case *DelegatecallStmt:
		return &DelegatecallStmt{Target: copyExpr(s.Target), Line: s.Line}
	case *TransferStmt:
		return &TransferStmt{To: copyExpr(s.To), Amount: copyExpr(s.Amount), Line: s.Line}
	case *PlaceholderStmt:
		return &PlaceholderStmt{Line: s.Line}
	}
	panic(fmt.Sprintf("minisol: copyStmt: unknown statement %T", s))
}

func copyExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *NumberExpr:
		return &NumberExpr{Text: e.Text, Line: e.Line}
	case *BoolExpr:
		return &BoolExpr{Value: e.Value, Line: e.Line}
	case *IdentExpr:
		return &IdentExpr{Name: e.Name, Line: e.Line}
	case *MsgExpr:
		return &MsgExpr{Field: e.Field, Line: e.Line}
	case *BlockExpr:
		return &BlockExpr{Field: e.Field, Line: e.Line}
	case *ThisExpr:
		return &ThisExpr{Line: e.Line}
	case *IndexExpr:
		return &IndexExpr{Base: copyExpr(e.Base), Key: copyExpr(e.Key), Line: e.Line}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: copyExpr(e.L), R: copyExpr(e.R), Line: e.Line}
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: copyExpr(e.X), Line: e.Line}
	case *CallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = copyExpr(a)
		}
		return &CallExpr{Name: e.Name, Args: args, Line: e.Line}
	}
	panic(fmt.Sprintf("minisol: copyExpr: unknown expression %T", e))
}

func (ck *checker) errf(line int, format string, args ...any) error {
	where := ck.contract.Name
	if ck.fn != nil {
		if ck.fn.Name == "" {
			where += ".constructor"
		} else {
			where += "." + ck.fn.Name
		}
	}
	return fmt.Errorf("minisol:%d: %s: %s", line, where, fmt.Sprintf(format, args...))
}

func (ck *checker) pushScope() { ck.scopes = append(ck.scopes, map[string]*Binding{}) }
func (ck *checker) popScope()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) declare(name string, kind BindKind, ty *Type, line int) (*Binding, error) {
	top := ck.scopes[len(ck.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, ck.errf(line, "duplicate declaration of %q", name)
	}
	b := &Binding{Kind: kind, LocalIdx: ck.nextCell, Ty: ty}
	ck.nextCell++
	top[name] = b
	return b, nil
}

func (ck *checker) lookup(name string) *Binding {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if b, ok := ck.scopes[i][name]; ok {
			return b
		}
	}
	if v, ok := ck.stateVars[name]; ok {
		return &Binding{Kind: BindState, StateVar: v, Ty: v.Type}
	}
	return nil
}

func (ck *checker) checkFunction(fn *Function) error {
	ck.fn = fn
	ck.scopes = nil
	ck.nextCell = 0
	ck.tempSeq = 0
	ck.pushScope()
	defer ck.popScope()
	for _, p := range fn.Params {
		if _, err := ck.declare(p.Name, BindParam, p.Type, fn.Line); err != nil {
			return err
		}
	}
	body, err := ck.checkStmts(fn.Body)
	if err != nil {
		return err
	}
	fn.Body = body
	fn.Cells = ck.nextCell
	return nil
}

// checkStmts checks a statement list, returning the (possibly rewritten) list
// with internal calls hoisted to statement position.
func (ck *checker) checkStmts(stmts []Stmt) ([]Stmt, error) {
	var out []Stmt
	for _, s := range stmts {
		hoisted, checked, err := ck.checkStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, hoisted...)
		out = append(out, checked)
	}
	return out, nil
}

// checkStmt returns hoisted prelude statements (temp declarations for
// internal calls) plus the checked statement.
func (ck *checker) checkStmt(s Stmt) (prelude []Stmt, checked Stmt, err error) {
	switch s := s.(type) {
	case *DeclStmt:
		if !s.Type.Elementary() {
			return nil, nil, ck.errf(s.Line, "local variables must be elementary, not %s", s.Type)
		}
		if s.Init != nil {
			s.Init, prelude, err = ck.checkExpr(s.Init, true)
			if err != nil {
				return nil, nil, err
			}
			if !s.Init.Type().Equal(s.Type) {
				return nil, nil, ck.errf(s.Line, "cannot initialize %s with %s", s.Type, s.Init.Type())
			}
		}
		b, err := ck.declare(s.Name, BindLocal, s.Type, s.Line)
		if err != nil {
			return nil, nil, err
		}
		s.binding = b
		return prelude, s, nil
	case *AssignStmt:
		var pre2 []Stmt
		s.RHS, prelude, err = ck.checkExpr(s.RHS, true)
		if err != nil {
			return nil, nil, err
		}
		s.LHS, pre2, err = ck.checkExpr(s.LHS, true)
		if err != nil {
			return nil, nil, err
		}
		prelude = append(prelude, pre2...)
		if err := ck.checkAssignable(s.LHS, s.Line); err != nil {
			return nil, nil, err
		}
		if s.Op != '=' && s.LHS.Type().Kind != TyUint {
			return nil, nil, ck.errf(s.Line, "compound assignment needs uint256, got %s", s.LHS.Type())
		}
		if !s.LHS.Type().Equal(s.RHS.Type()) {
			return nil, nil, ck.errf(s.Line, "cannot assign %s to %s", s.RHS.Type(), s.LHS.Type())
		}
		return prelude, s, nil
	case *IfStmt:
		s.Cond, prelude, err = ck.checkExpr(s.Cond, true)
		if err != nil {
			return nil, nil, err
		}
		if s.Cond.Type().Kind != TyBool {
			return nil, nil, ck.errf(s.Line, "if condition must be bool, got %s", s.Cond.Type())
		}
		ck.pushScope()
		s.Then, err = ck.checkStmts(s.Then)
		ck.popScope()
		if err != nil {
			return nil, nil, err
		}
		ck.pushScope()
		s.Else, err = ck.checkStmts(s.Else)
		ck.popScope()
		if err != nil {
			return nil, nil, err
		}
		return prelude, s, nil
	case *WhileStmt:
		var pre []Stmt
		s.Cond, pre, err = ck.checkExpr(s.Cond, true)
		if err != nil {
			return nil, nil, err
		}
		if len(pre) > 0 {
			return nil, nil, ck.errf(s.Line, "internal calls are not allowed in while conditions")
		}
		if s.Cond.Type().Kind != TyBool {
			return nil, nil, ck.errf(s.Line, "while condition must be bool, got %s", s.Cond.Type())
		}
		ck.pushScope()
		s.Body, err = ck.checkStmts(s.Body)
		ck.popScope()
		if err != nil {
			return nil, nil, err
		}
		return nil, s, nil
	case *RequireStmt:
		s.Cond, prelude, err = ck.checkExpr(s.Cond, true)
		if err != nil {
			return nil, nil, err
		}
		if s.Cond.Type().Kind != TyBool {
			return nil, nil, ck.errf(s.Line, "require condition must be bool, got %s", s.Cond.Type())
		}
		return prelude, s, nil
	case *RevertStmt:
		return nil, s, nil
	case *ReturnStmt:
		if s.Value != nil {
			s.Value, prelude, err = ck.checkExpr(s.Value, true)
			if err != nil {
				return nil, nil, err
			}
		}
		switch {
		case ck.fn.Ret == nil && s.Value != nil:
			return nil, nil, ck.errf(s.Line, "function returns nothing")
		case ck.fn.Ret != nil && s.Value == nil:
			return nil, nil, ck.errf(s.Line, "function must return %s", ck.fn.Ret)
		case ck.fn.Ret != nil && !s.Value.Type().Equal(ck.fn.Ret):
			return nil, nil, ck.errf(s.Line, "cannot return %s as %s", s.Value.Type(), ck.fn.Ret)
		}
		return prelude, s, nil
	case *ExprStmt:
		// A bare internal call stays in place (it IS at statement position);
		// other expressions are checked for effect.
		if call, ok := s.X.(*CallExpr); ok {
			checkedCall, pre, err := ck.checkCall(call, false)
			if err != nil {
				return nil, nil, err
			}
			s.X = checkedCall
			return pre, s, nil
		}
		s.X, prelude, err = ck.checkExpr(s.X, true)
		if err != nil {
			return nil, nil, err
		}
		return prelude, s, nil
	case *SelfdestructStmt:
		s.Beneficiary, prelude, err = ck.checkExpr(s.Beneficiary, true)
		if err != nil {
			return nil, nil, err
		}
		if s.Beneficiary.Type().Kind != TyAddress {
			return nil, nil, ck.errf(s.Line, "selfdestruct needs an address, got %s", s.Beneficiary.Type())
		}
		return prelude, s, nil
	case *DelegatecallStmt:
		s.Target, prelude, err = ck.checkExpr(s.Target, true)
		if err != nil {
			return nil, nil, err
		}
		if s.Target.Type().Kind != TyAddress {
			return nil, nil, ck.errf(s.Line, "delegatecall needs an address, got %s", s.Target.Type())
		}
		return prelude, s, nil
	case *TransferStmt:
		var pre2 []Stmt
		s.To, prelude, err = ck.checkExpr(s.To, true)
		if err != nil {
			return nil, nil, err
		}
		s.Amount, pre2, err = ck.checkExpr(s.Amount, true)
		if err != nil {
			return nil, nil, err
		}
		prelude = append(prelude, pre2...)
		if s.To.Type().Kind != TyAddress || s.Amount.Type().Kind != TyUint {
			return nil, nil, ck.errf(s.Line, "transfer needs (address, uint256)")
		}
		return prelude, s, nil
	case *PlaceholderStmt:
		return nil, nil, ck.errf(s.Line, "`_;` outside a modifier")
	}
	return nil, nil, ck.errf(0, "unknown statement %T", s)
}

func (ck *checker) checkAssignable(e Expr, line int) error {
	switch e := e.(type) {
	case *IdentExpr:
		if e.Binding.Kind == BindState && !e.Binding.StateVar.Type.Elementary() {
			return ck.errf(line, "cannot assign to a whole %s", e.Binding.StateVar.Type)
		}
		return nil
	case *IndexExpr:
		if !e.Type().Elementary() {
			return ck.errf(line, "cannot assign to a whole %s", e.Type())
		}
		return nil
	}
	return ck.errf(line, "expression is not assignable")
}

// checkExpr type-checks e. When hoist is true, internal calls inside e are
// replaced by temporaries declared in the returned prelude.
func (ck *checker) checkExpr(e Expr, hoist bool) (Expr, []Stmt, error) {
	switch e := e.(type) {
	case *NumberExpr:
		e.ty = Uint256T
		return e, nil, nil
	case *BoolExpr:
		e.ty = BoolT
		return e, nil, nil
	case *IdentExpr:
		b := ck.lookup(e.Name)
		if b == nil {
			return nil, nil, ck.errf(e.Line, "undefined identifier %q", e.Name)
		}
		e.Binding = b
		e.ty = b.Ty
		return e, nil, nil
	case *MsgExpr:
		if e.Field == "sender" {
			e.ty = AddressT
		} else {
			e.ty = Uint256T
		}
		return e, nil, nil
	case *BlockExpr:
		e.ty = Uint256T
		return e, nil, nil
	case *ThisExpr:
		e.ty = AddressT
		return e, nil, nil
	case *IndexExpr:
		base, pre1, err := ck.checkExpr(e.Base, hoist)
		if err != nil {
			return nil, nil, err
		}
		key, pre2, err := ck.checkExpr(e.Key, hoist)
		if err != nil {
			return nil, nil, err
		}
		e.Base, e.Key = base, key
		switch base.Type().Kind {
		case TyMapping:
			if !key.Type().Equal(base.Type().Key) {
				return nil, nil, ck.errf(e.Line, "mapping key must be %s, got %s", base.Type().Key, key.Type())
			}
		case TyArray:
			if key.Type().Kind != TyUint {
				return nil, nil, ck.errf(e.Line, "array index must be uint256, got %s", key.Type())
			}
		default:
			return nil, nil, ck.errf(e.Line, "cannot index %s", base.Type())
		}
		e.ty = base.Type().Val
		return e, append(pre1, pre2...), nil
	case *BinaryExpr:
		l, pre1, err := ck.checkExpr(e.L, hoist)
		if err != nil {
			return nil, nil, err
		}
		r, pre2, err := ck.checkExpr(e.R, hoist)
		if err != nil {
			return nil, nil, err
		}
		e.L, e.R = l, r
		pre := append(pre1, pre2...)
		lt, rt := l.Type(), r.Type()
		switch e.Op {
		case TokAndAnd, TokOrOr:
			if lt.Kind != TyBool || rt.Kind != TyBool {
				return nil, nil, ck.errf(e.Line, "logical operator needs bool operands")
			}
			e.ty = BoolT
		case TokEq, TokNeq:
			if !lt.Equal(rt) || !lt.Elementary() {
				return nil, nil, ck.errf(e.Line, "cannot compare %s and %s", lt, rt)
			}
			e.ty = BoolT
		case TokLt, TokGt, TokLe, TokGe:
			if lt.Kind != TyUint || rt.Kind != TyUint {
				return nil, nil, ck.errf(e.Line, "ordering needs uint256 operands, got %s and %s", lt, rt)
			}
			e.ty = BoolT
		default: // arithmetic / bitwise / shifts
			if lt.Kind != TyUint || rt.Kind != TyUint {
				return nil, nil, ck.errf(e.Line, "arithmetic needs uint256 operands, got %s and %s", lt, rt)
			}
			e.ty = Uint256T
		}
		return e, pre, nil
	case *UnaryExpr:
		x, pre, err := ck.checkExpr(e.X, hoist)
		if err != nil {
			return nil, nil, err
		}
		e.X = x
		if e.Op == TokBang {
			if x.Type().Kind != TyBool {
				return nil, nil, ck.errf(e.Line, "! needs bool")
			}
			e.ty = BoolT
		} else {
			if x.Type().Kind != TyUint {
				return nil, nil, ck.errf(e.Line, "unary - needs uint256")
			}
			e.ty = Uint256T
		}
		return e, pre, nil
	case *CallExpr:
		return ck.checkCall(e, hoist)
	}
	return nil, nil, ck.errf(0, "unknown expression %T", e)
}

// checkCall checks a call. For internal calls with hoist=true, the call is
// replaced by a temporary local.
func (ck *checker) checkCall(e *CallExpr, hoist bool) (Expr, []Stmt, error) {
	var prelude []Stmt
	for i, a := range e.Args {
		ca, pre, err := ck.checkExpr(a, hoist)
		if err != nil {
			return nil, nil, err
		}
		e.Args[i] = ca
		prelude = append(prelude, pre...)
	}
	if builtinNames[e.Name] {
		e.Builtin = e.Name
		switch e.Name {
		case "balance":
			if len(e.Args) != 1 || e.Args[0].Type().Kind != TyAddress {
				return nil, nil, ck.errf(e.Line, "balance(address)")
			}
			e.ty = Uint256T
		case "keccak256":
			if len(e.Args) != 1 || e.Args[0].Type().Kind != TyUint {
				return nil, nil, ck.errf(e.Line, "keccak256(uint256)")
			}
			e.ty = Uint256T
		case "staticcall_unchecked", "staticcall_checked":
			if len(e.Args) != 2 || e.Args[0].Type().Kind != TyAddress || e.Args[1].Type().Kind != TyUint {
				return nil, nil, ck.errf(e.Line, "%s(address, uint256)", e.Name)
			}
			e.ty = Uint256T
		case "address":
			if len(e.Args) != 1 || !e.Args[0].Type().Elementary() {
				return nil, nil, ck.errf(e.Line, "address(x) needs an elementary value")
			}
			e.ty = AddressT
		case "uint256":
			if len(e.Args) != 1 || !e.Args[0].Type().Elementary() {
				return nil, nil, ck.errf(e.Line, "uint256(x) needs an elementary value")
			}
			e.ty = Uint256T
		}
		return e, prelude, nil
	}
	target, ok := ck.functions[e.Name]
	if !ok {
		return nil, nil, ck.errf(e.Line, "call to undefined function %q", e.Name)
	}
	if target.Public {
		return nil, nil, ck.errf(e.Line, "internal calls to public functions are not supported (make %q internal)", e.Name)
	}
	if len(e.Args) != len(target.Params) {
		return nil, nil, ck.errf(e.Line, "%s takes %d arguments, got %d", e.Name, len(target.Params), len(e.Args))
	}
	for i, a := range e.Args {
		if !a.Type().Equal(target.Params[i].Type) {
			return nil, nil, ck.errf(e.Line, "argument %d of %s must be %s, got %s", i+1, e.Name, target.Params[i].Type, a.Type())
		}
	}
	e.Target = target
	if target.Ret != nil {
		e.ty = target.Ret
	}
	ck.recordCall(ck.fn, target)
	if !hoist {
		return e, prelude, nil
	}
	if target.Ret == nil {
		return nil, nil, ck.errf(e.Line, "void function %q used as a value", e.Name)
	}
	// Hoist: tmp := call; use tmp.
	ck.tempSeq++
	tmpName := fmt.Sprintf("$t%d", ck.tempSeq)
	b, err := ck.declare(tmpName, BindLocal, target.Ret, e.Line)
	if err != nil {
		return nil, nil, err
	}
	decl := &DeclStmt{Name: tmpName, Type: target.Ret, Init: e, Line: e.Line, binding: b}
	prelude = append(prelude, decl)
	use := &IdentExpr{Name: tmpName, Line: e.Line, Binding: b}
	use.ty = target.Ret
	return use, prelude, nil
}

func (ck *checker) recordCall(from, to *Function) {
	if ck.calls == nil {
		ck.calls = map[string]map[string]bool{}
	}
	name := from.Name
	if name == "" {
		name = "<constructor>"
	}
	if ck.calls[name] == nil {
		ck.calls[name] = map[string]bool{}
	}
	ck.calls[name][to.Name] = true
}

// rejectRecursion fails on call-graph cycles: frames live at fixed memory
// offsets, so recursion would corrupt locals.
func (ck *checker) rejectRecursion() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var path []string
	var visit func(name string) error
	visit = func(name string) error {
		color[name] = gray
		path = append(path, name)
		for callee := range ck.calls[name] {
			switch color[callee] {
			case gray:
				return fmt.Errorf("minisol: recursion is not supported: %s -> %s", strings.Join(path, " -> "), callee)
			case white:
				if err := visit(callee); err != nil {
					return err
				}
			}
		}
		color[name] = black
		path = path[:len(path)-1]
		return nil
	}
	for name := range ck.calls {
		if color[name] == white {
			if err := visit(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// mappingValOK restricts mapping values to single-word types or nested
// mappings (the layouts the storage addressing scheme supports).
func mappingValOK(t *Type) bool {
	if t.Kind == TyMapping {
		return mappingValOK(t.Val)
	}
	return t.Elementary()
}
