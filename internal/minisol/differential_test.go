package minisol_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/evm"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

// This file differentially tests the compiler + EVM against the source-level
// reference interpreter: random well-typed programs are executed both ways
// under random call sequences, and every observable outcome (revert or not,
// returned word) must agree. Divergence means a bug in the code generator,
// the decoder, the interpreter, or the EVM.

// pgen generates random well-typed contracts as source text.
type pgen struct {
	r       *rand.Rand
	b       strings.Builder
	uints   []string // state vars of type uint256
	addrs   []string
	bools   []string
	maps    []string // mapping(uint256 => uint256)
	amaps   []string // mapping(address => uint256)
	arrays  []string // uint256[4]
	locals  []string // current function's uint locals (incl. uint params)
	aparam  []string // current function's address params
	helper  []helperSig
	loopSeq int
}

type helperSig struct {
	name   string
	params int
}

type pubFn struct {
	name    string
	params  []byte // 'u' or 'a'
	returns bool
	payable bool
}

func (g *pgen) pick(list []string) string { return list[g.r.Intn(len(list))] }

func (g *pgen) generate() (string, []pubFn) {
	g.b.WriteString("contract Fuzz {\n")
	// State variables.
	for i := 0; i < 2+g.r.Intn(3); i++ {
		n := fmt.Sprintf("su%d", i)
		g.uints = append(g.uints, n)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "  uint256 %s = %d;\n", n, g.r.Intn(1000))
		} else {
			fmt.Fprintf(&g.b, "  uint256 %s;\n", n)
		}
	}
	for i := 0; i < 1+g.r.Intn(2); i++ {
		n := fmt.Sprintf("sa%d", i)
		g.addrs = append(g.addrs, n)
		fmt.Fprintf(&g.b, "  address %s;\n", n)
	}
	for i := 0; i < g.r.Intn(2); i++ {
		n := fmt.Sprintf("sb%d", i)
		g.bools = append(g.bools, n)
		fmt.Fprintf(&g.b, "  bool %s;\n", n)
	}
	for i := 0; i < 1+g.r.Intn(2); i++ {
		n := fmt.Sprintf("m%d", i)
		g.maps = append(g.maps, n)
		fmt.Fprintf(&g.b, "  mapping(uint256 => uint256) %s;\n", n)
	}
	for i := 0; i < g.r.Intn(2); i++ {
		n := fmt.Sprintf("am%d", i)
		g.amaps = append(g.amaps, n)
		fmt.Fprintf(&g.b, "  mapping(address => uint256) %s;\n", n)
	}
	if g.r.Intn(2) == 0 {
		g.arrays = append(g.arrays, "arr0")
		g.b.WriteString("  uint256[4] arr0;\n")
	}
	// Constructor sometimes seeds state from the deployer.
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&g.b, "  constructor() { %s = msg.sender; }\n", g.pick(g.addrs))
	}
	// Internal helpers (non-recursive by construction: no helper calls).
	for i := 0; i < g.r.Intn(3); i++ {
		h := helperSig{name: fmt.Sprintf("help%d", i), params: 1 + g.r.Intn(2)}
		g.helper = append(g.helper, h)
		var params []string
		g.locals = nil
		g.aparam = nil
		for p := 0; p < h.params; p++ {
			pn := fmt.Sprintf("hp%d", p)
			params = append(params, "uint256 "+pn)
			g.locals = append(g.locals, pn)
		}
		fmt.Fprintf(&g.b, "  function %s(%s) internal returns (uint256) {\n", h.name, strings.Join(params, ", "))
		g.stmts(2, 2, false)
		fmt.Fprintf(&g.b, "    return %s;\n  }\n", g.uintExpr(2))
	}
	// Public functions.
	var pubs []pubFn
	for i := 0; i < 2+g.r.Intn(3); i++ {
		fn := pubFn{name: fmt.Sprintf("pub%d", i), returns: g.r.Intn(2) == 0, payable: g.r.Intn(4) == 0}
		g.locals = nil
		g.aparam = nil
		var params []string
		for p := 0; p < g.r.Intn(3); p++ {
			if g.r.Intn(3) == 0 {
				pn := fmt.Sprintf("pa%d", p)
				params = append(params, "address "+pn)
				fn.params = append(fn.params, 'a')
				g.aparam = append(g.aparam, pn)
			} else {
				pn := fmt.Sprintf("pu%d", p)
				params = append(params, "uint256 "+pn)
				fn.params = append(fn.params, 'u')
				g.locals = append(g.locals, pn)
			}
		}
		attrs := "public"
		if fn.payable {
			attrs += " payable"
		}
		ret := ""
		if fn.returns {
			ret = " returns (uint256)"
		}
		fmt.Fprintf(&g.b, "  function %s(%s) %s%s {\n", fn.name, strings.Join(params, ", "), attrs, ret)
		// Declare a couple of locals up front (block scoping kept simple).
		for l := 0; l < 1+g.r.Intn(2); l++ {
			ln := fmt.Sprintf("loc%d", l)
			fmt.Fprintf(&g.b, "    uint256 %s = %s;\n", ln, g.uintExpr(2))
			g.locals = append(g.locals, ln)
		}
		g.stmts(3+g.r.Intn(4), 3, true)
		if fn.returns {
			fmt.Fprintf(&g.b, "    return %s;\n", g.uintExpr(3))
		}
		g.b.WriteString("  }\n")
		pubs = append(pubs, fn)
	}
	g.b.WriteString("}\n")
	return g.b.String(), pubs
}

// stmts emits up to n random statements at the given expression depth.
func (g *pgen) stmts(n, depth int, allowHelpers bool) {
	for i := 0; i < n; i++ {
		switch g.r.Intn(10) {
		case 0, 1, 2: // state assignment
			g.assignment(depth)
		case 3:
			if len(g.locals) > 0 {
				op := []string{"=", "+=", "-="}[g.r.Intn(3)]
				fmt.Fprintf(&g.b, "    %s %s %s;\n", g.pick(g.locals), op, g.uintExpr(depth))
			}
		case 4: // if/else
			fmt.Fprintf(&g.b, "    if (%s) {\n", g.boolExpr(depth))
			g.stmts(1+g.r.Intn(2), depth-1, allowHelpers)
			if g.r.Intn(2) == 0 {
				g.b.WriteString("    } else {\n")
				g.stmts(1, depth-1, allowHelpers)
			}
			g.b.WriteString("    }\n")
		case 5: // bounded loop with a fresh counter
			g.loopSeq++
			c := fmt.Sprintf("it%d", g.loopSeq)
			bound := 1 + g.r.Intn(3)
			fmt.Fprintf(&g.b, "    uint256 %s = 0;\n    while (%s < %d) {\n", c, c, bound)
			g.stmts(1, depth-1, false)
			fmt.Fprintf(&g.b, "      %s += 1;\n    }\n", c)
		case 6: // occasional require (reverts are compared too)
			if g.r.Intn(3) == 0 {
				fmt.Fprintf(&g.b, "    require(%s);\n", g.boolExpr(depth))
			}
		case 7: // helper call into a local
			if allowHelpers && len(g.helper) > 0 && len(g.locals) > 0 {
				h := g.helper[g.r.Intn(len(g.helper))]
				args := make([]string, h.params)
				for a := range args {
					args[a] = g.uintExpr(depth - 1)
				}
				fmt.Fprintf(&g.b, "    %s = %s(%s);\n", g.pick(g.locals), h.name, strings.Join(args, ", "))
			}
		default:
			g.assignment(depth)
		}
	}
}

func (g *pgen) assignment(depth int) {
	switch g.r.Intn(6) {
	case 0:
		fmt.Fprintf(&g.b, "    %s = %s;\n", g.pick(g.uints), g.uintExpr(depth))
	case 1:
		fmt.Fprintf(&g.b, "    %s = %s;\n", g.pick(g.maps)+"["+g.uintExpr(depth-1)+"]", g.uintExpr(depth))
	case 2:
		if len(g.amaps) > 0 {
			fmt.Fprintf(&g.b, "    %s[%s] = %s;\n", g.pick(g.amaps), g.addrExpr(), g.uintExpr(depth))
		}
	case 3:
		if len(g.arrays) > 0 {
			fmt.Fprintf(&g.b, "    %s[(%s) %% 4] = %s;\n", g.pick(g.arrays), g.uintExpr(depth-1), g.uintExpr(depth))
		}
	case 4:
		fmt.Fprintf(&g.b, "    %s = %s;\n", g.pick(g.addrs), g.addrExpr())
	case 5:
		if len(g.bools) > 0 {
			fmt.Fprintf(&g.b, "    %s = %s;\n", g.pick(g.bools), g.boolExpr(depth))
		}
	}
}

func (g *pgen) uintExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprint(g.r.Intn(50))
		case 1:
			if len(g.locals) > 0 {
				return g.pick(g.locals)
			}
			return fmt.Sprint(g.r.Intn(10))
		case 2:
			return g.pick(g.uints)
		case 3:
			return "msg.value"
		default:
			return fmt.Sprintf("%s[%d]", g.pick(g.maps), g.r.Intn(8))
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 4:
		return fmt.Sprintf("(%s %% %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 5:
		return fmt.Sprintf("(%s %s %s)", g.uintExpr(depth-1), g.pick([]string{"&", "|", "^", "<<", ">>"}), fmt.Sprint(g.r.Intn(9)))
	case 6:
		return fmt.Sprintf("%s[%s]", g.pick(g.maps), g.uintExpr(depth-1))
	default:
		return fmt.Sprintf("keccak256(%s)", g.uintExpr(depth-1))
	}
}

func (g *pgen) boolExpr(depth int) string {
	if depth <= 0 {
		if len(g.bools) > 0 && g.r.Intn(2) == 0 {
			return g.pick(g.bools)
		}
		return g.pick([]string{"true", "false"})
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s < %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s >= %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s == %s)", g.uintExpr(depth-1), g.uintExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s == %s)", g.addrExpr(), g.addrExpr())
	case 4:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(%s %s %s)", g.boolExpr(depth-1), g.pick([]string{"&&", "||"}), g.boolExpr(depth-1))
	}
}

func (g *pgen) addrExpr() string {
	options := []string{"msg.sender"}
	options = append(options, g.addrs...)
	options = append(options, g.aparam...)
	if g.r.Intn(5) == 0 {
		return fmt.Sprintf("address(%d)", g.r.Intn(500))
	}
	return options[g.r.Intn(len(options))]
}

// TestCompiledMatchesInterpreter is the differential harness.
func TestCompiledMatchesInterpreter(t *testing.T) {
	const programs = 60
	const callsPerProgram = 25
	for seed := int64(0); seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			g := &pgen{r: rand.New(rand.NewSource(seed*7919 + 13))}
			src, pubs := g.generate()

			contract, err := minisol.Parse(src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, src)
			}
			if err := minisol.Check(contract); err != nil {
				t.Fatalf("generated program does not check: %v\n%s", err, src)
			}
			compiled, err := minisol.Compile(contract)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, src)
			}

			// EVM side.
			c := chain.New()
			deployer := c.NewAccount(u256.MustHex("0xffffffff"))
			rec := c.Deploy(deployer, compiled.Deploy, u256.Zero)
			if rec.Err != nil {
				t.Fatalf("deploy: %v\n%s", rec.Err, src)
			}
			target := rec.Created
			senders := []evm.Address{deployer, c.NewAccount(u256.MustHex("0xffffffff")), c.NewAccount(u256.MustHex("0xffffffff"))}

			// Interpreter side: reparse so the interpreter gets its own AST
			// (Compile mutates bodies in place during checking).
			ref, err := minisol.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := minisol.Check(ref); err != nil {
				t.Fatal(err)
			}
			ip, err := minisol.NewInterp(ref, deployer.Word())
			if err != nil {
				t.Fatalf("interp init: %v\n%s", err, src)
			}

			r := rand.New(rand.NewSource(seed * 104729))
			for call := 0; call < callsPerProgram; call++ {
				fn := pubs[r.Intn(len(pubs))]
				sender := senders[r.Intn(len(senders))]
				value := u256.Zero
				if fn.payable && r.Intn(2) == 0 {
					value = u256.FromUint64(uint64(r.Intn(100)))
				}
				args := make([]u256.U256, len(fn.params))
				for i, kind := range fn.params {
					if kind == 'a' {
						args[i] = senders[r.Intn(len(senders))].Word()
					} else {
						args[i] = u256.FromUint64(uint64(r.Intn(60)))
					}
				}
				abi, _ := minisol.FindABI(compiled.ABI, fn.name)
				receipt := c.Call(sender, target, abi.MustEncodeCall(args...), value)
				got, err := ip.Call(fn.name, sender.Word(), value, args...)
				if err != nil {
					t.Fatalf("interp call: %v\n%s", err, src)
				}
				evmReverted := receipt.Err != nil
				if evmReverted != got.Reverted {
					t.Fatalf("call %d %s(%v) from %s value=%s: EVM reverted=%v, interp reverted=%v\n%s",
						call, fn.name, args, sender, value, evmReverted, got.Reverted, src)
				}
				if !evmReverted && fn.returns {
					w, err := minisol.DecodeReturnWord(receipt.Output)
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					if got.Ret == nil || w != *got.Ret {
						t.Fatalf("call %d %s(%v): EVM returned %s, interp returned %v\n%s",
							call, fn.name, args, w, got.Ret, src)
					}
				}
			}
		})
	}
}

// The interpreter agrees with the EVM on the curated fixtures too, including
// the full Victim attack replayed at source level.
func TestInterpreterVictimAttack(t *testing.T) {
	contract, err := minisol.Parse(minisol.VictimSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := minisol.Check(contract); err != nil {
		t.Fatal(err)
	}
	deployer := u256.MustHex("0xd001")
	attacker := u256.MustHex("0xbad1")
	ip, err := minisol.NewInterp(contract, deployer)
	if err != nil {
		t.Fatal(err)
	}
	ip.Balance = u256.FromUint64(5000)

	mustOK := func(name string, args ...u256.U256) {
		t.Helper()
		res, err := ip.Call(name, attacker, u256.Zero, args...)
		if err != nil || res.Reverted {
			t.Fatalf("%s: err=%v reverted=%v", name, err, res.Reverted)
		}
	}
	// Premature kill reverts.
	if res, _ := ip.Call("kill", attacker, u256.Zero); !res.Reverted {
		t.Fatal("premature kill should revert")
	}
	mustOK("registerSelf")
	mustOK("referAdmin", attacker)
	mustOK("changeOwner", attacker)
	mustOK("kill")
	if !ip.Destroyed {
		t.Fatal("victim should be destroyed at source level")
	}
	if len(ip.Sent) != 1 || ip.Sent[0].To != attacker || ip.Sent[0].Amount != u256.FromUint64(5000) {
		t.Fatalf("funds should go to the attacker: %+v", ip.Sent)
	}
}
