// Package minisol implements a compiler for a Solidity subset to EVM
// bytecode. It exists so the reproduction can generate unlimited, realistic
// contract bytecode with known source and known ground truth: corpus
// contracts, the paper's running examples (the Victim contract of Section 2,
// the Parity-style wallet), and the source-level domain of the Securify2
// baseline.
//
// The subset covers what the paper's vulnerability classes need: contracts
// with state variables (uint256, address, bool, arbitrarily nested mappings),
// modifiers, require/assert guards, public/internal functions, msg.sender /
// msg.value, selfdestruct, low-level delegatecall and the 0x-style staticcall
// patterns, value transfer, and internal calls. Compiled output uses the
// standard Solidity ABI: a 4-byte-selector dispatcher, slot-per-variable
// storage layout, and keccak256(key ++ slot) mapping addressing — the layout
// the Ethainter data-structure rules (DS/DSA) are designed around.
package minisol

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber // decimal or 0x hex literal
	TokString // quoted string (used only in event-like constructs; reserved)

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot
	TokArrow // =>

	// Operators.
	TokAssign     // =
	TokPlusAssign // +=
	TokMinusAssign
	TokEq  // ==
	TokNeq // !=
	TokLt
	TokGt
	TokLe
	TokGe
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokShl // <<
	TokShr // >>
	TokAndAnd
	TokOrOr
	TokBang
	TokUnderscore // the modifier placeholder `_`
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%q", t.Text)
	}
	return fmt.Sprintf("tok(%d)", t.Kind)
}

// Keywords of the subset. Identifiers are checked against this set by the
// parser rather than the lexer so error messages can be contextual.
var keywords = map[string]bool{
	"contract": true, "function": true, "modifier": true, "constructor": true,
	"mapping": true, "returns": true, "return": true, "if": true, "else": true,
	"while": true, "require": true, "assert": true, "revert": true,
	"public": true, "internal": true, "payable": true, "view": true,
	"true": true, "false": true, "selfdestruct": true,
	"uint256": true, "address": true, "bool": true, "msg": true, "block": true,
	"this": true, "emit": true, "event": true,
}

// Pos renders a token position for diagnostics.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
