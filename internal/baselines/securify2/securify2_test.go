package securify2_test

import (
	"errors"
	"testing"

	"ethainter/internal/baselines/securify2"
	"ethainter/internal/minisol"
)

func TestUnguardedSelfdestructFlagged(t *testing.T) {
	vs, err := securify2.Analyze(minisol.AccessibleSelfdestructSource)
	if err != nil {
		t.Fatal(err)
	}
	if !securify2.Flagged(vs, securify2.UnrestrictedSelfdestruct) {
		t.Error("unguarded selfdestruct should be flagged")
	}
}

// Securify2 has no composite modeling: Victim's guarded kill() looks safe.
func TestVictimCompositeInvisible(t *testing.T) {
	vs, err := securify2.Analyze(minisol.VictimSource)
	if err != nil {
		t.Fatal(err)
	}
	if securify2.Flagged(vs, securify2.UnrestrictedSelfdestruct) {
		t.Error("kill() is modifier-guarded; securify2 cannot see the guard tainting")
	}
}

func TestGuardedSelfdestructNotFlagged(t *testing.T) {
	src := `
contract G {
    address owner;
    constructor() { owner = msg.sender; }
    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}`
	vs, err := securify2.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if securify2.Flagged(vs, securify2.UnrestrictedSelfdestruct) {
		t.Error("require-guarded selfdestruct should pass")
	}
}

// Parameter-target delegatecall (the real vulnerability) is invisible, while
// a state-variable-target delegatecall in an owner-guarded function is
// flagged anyway — the 0/3-precision, zero-completeness shape of Figure 7.
func TestDelegatecallBlindspots(t *testing.T) {
	vs, err := securify2.Analyze(minisol.TaintedDelegatecallSource)
	if err != nil {
		t.Fatal(err)
	}
	if securify2.Flagged(vs, securify2.UnrestrictedDelegateCall) {
		t.Error("parameter-target delegatecall lives in assembly; securify2 must miss it")
	}
	safeProxy := `
contract Proxy {
    address impl;
    address owner;
    constructor() { owner = msg.sender; }
    function run() public {
        require(msg.sender == owner);
        delegatecall(impl);
    }
}`
	vs, err = securify2.Analyze(safeProxy)
	if err != nil {
		t.Fatal(err)
	}
	if !securify2.Flagged(vs, securify2.UnrestrictedDelegateCall) {
		t.Error("state-variable delegatecall should be (falsely) flagged despite the guard")
	}
}

func TestUnrestrictedWriteNoise(t *testing.T) {
	vs, err := securify2.Analyze(minisol.SafeTokenSource)
	if err != nil {
		t.Fatal(err)
	}
	if !securify2.Flagged(vs, securify2.UnrestrictedWrite) {
		t.Error("balances[to] without a sender guard should be flagged (the FP class)")
	}
}

func TestOwnEntryWriteNotFlagged(t *testing.T) {
	src := `
contract R {
    mapping(address => bool) registered;
    function registerSelf() public { registered[msg.sender] = true; }
}`
	vs, err := securify2.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if securify2.Flagged(vs, securify2.UnrestrictedWrite) {
		t.Error("writing the caller's own entry is permitted by the pattern")
	}
}

func TestNoFactsOnLowLevelConstructs(t *testing.T) {
	_, err := securify2.Analyze(minisol.UncheckedStaticcallSource)
	if !errors.Is(err, securify2.ErrNoFacts) {
		t.Errorf("staticcall intrinsics should abort fact extraction, got %v", err)
	}
	deepNest := `
contract D {
    mapping(address => mapping(address => mapping(uint256 => bool))) deep;
    function f() public {}
}`
	_, err = securify2.Analyze(deepNest)
	if !errors.Is(err, securify2.ErrNoFacts) {
		t.Errorf("3-deep mappings should abort fact extraction, got %v", err)
	}
}
