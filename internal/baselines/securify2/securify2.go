// Package securify2 reimplements the Securify v2.0 baseline of Section 6.2
// (Figure 7): a source-level pattern analysis. Unlike Ethainter it only
// applies to contracts with available, compiler-version-compatible source;
// it cannot see low-level operations expressed as inline assembly (which is
// where the tainted-delegatecall pattern lives in practice, hence its zero
// completeness there); and it has no notion of guard tainting or
// taint-through-storage, so composite escalations are invisible to it.
package securify2

import (
	"errors"
	"fmt"
	"sort"

	"ethainter/internal/minisol"
)

// Pattern names the implemented Securify2 violation patterns.
type Pattern string

// The patterns compared in Figure 7.
const (
	UnrestrictedSelfdestruct Pattern = "UnrestrictedSelfdestruct"
	UnrestrictedDelegateCall Pattern = "UnrestrictedDelegateCall"
	UnrestrictedWrite        Pattern = "UnrestrictedWrite"
)

// Violation is one source-level finding.
type Violation struct {
	Pattern  Pattern
	Function string
	Line     int
}

// ErrNoFacts mirrors Securify2's "fails to produce analysis input facts":
// source constructs outside its fact extractor's coverage abort the analysis.
var ErrNoFacts = errors.New("securify2: unable to produce analysis facts")

// Analyze parses the source and runs the three patterns. Contracts whose
// source uses constructs outside the fact extractor's coverage (low-level
// staticcall intrinsics, deeply nested mappings) return ErrNoFacts, mirroring
// the 1,182-of-7,276 extraction failures in the paper's experiment.
func Analyze(src string) ([]Violation, error) {
	contract, err := minisol.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("securify2: %w", err)
	}
	if usesUnsupported(contract) {
		return nil, ErrNoFacts
	}
	a := &analyzer{contract: contract, modifierGuards: map[string]bool{}}
	for _, m := range contract.Modifiers {
		a.modifierGuards[m.Name] = stmtsContainSenderCheck(m.Body)
	}
	var out []Violation
	for _, fn := range contract.Functions {
		if !fn.Public {
			continue
		}
		out = append(out, a.checkFunction(fn)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// usesUnsupported reports source constructs the fact extractor cannot model.
func usesUnsupported(c *minisol.Contract) bool {
	unsupported := false
	for _, fn := range c.Functions {
		walkStmts(fn.Body, func(s minisol.Stmt) {
			if es, ok := s.(*minisol.ExprStmt); ok {
				if call, ok := es.X.(*minisol.CallExpr); ok && isLowLevel(call.Name) {
					unsupported = true
				}
			}
			if ds, ok := s.(*minisol.DeclStmt); ok {
				if call, ok := ds.Init.(*minisol.CallExpr); ok && isLowLevel(call.Name) {
					unsupported = true
				}
			}
		}, func(e minisol.Expr) {
			if call, ok := e.(*minisol.CallExpr); ok && isLowLevel(call.Name) {
				unsupported = true
			}
		})
	}
	for _, v := range c.Vars {
		if mappingDepth(v.Type) > 2 {
			unsupported = true
		}
	}
	return unsupported
}

func isLowLevel(name string) bool {
	return name == "staticcall_unchecked" || name == "staticcall_checked"
}

func mappingDepth(t *minisol.Type) int {
	d := 0
	for t.Kind == minisol.TyMapping {
		d++
		t = t.Val
	}
	return d
}

type analyzer struct {
	contract       *minisol.Contract
	modifierGuards map[string]bool
}

// checkFunction applies the three patterns to one public function.
func (a *analyzer) checkFunction(fn *minisol.Function) []Violation {
	guarded := false
	for _, m := range fn.Modifiers {
		if a.modifierGuards[m] {
			guarded = true
		}
	}
	var out []Violation
	// seenSenderCheck becomes true once a require comparing msg.sender runs
	// before the statement under scrutiny (straight-line approximation).
	seenSenderCheck := guarded
	var walk func(stmts []minisol.Stmt, condGuard bool)
	walk = func(stmts []minisol.Stmt, condGuard bool) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *minisol.RequireStmt:
				if exprChecksSender(s.Cond) {
					seenSenderCheck = true
				}
			case *minisol.IfStmt:
				thenGuard := condGuard || exprChecksSender(s.Cond)
				walk(s.Then, thenGuard)
				walk(s.Else, condGuard)
			case *minisol.WhileStmt:
				walk(s.Body, condGuard)
			case *minisol.SelfdestructStmt:
				if !seenSenderCheck && !condGuard {
					out = append(out, Violation{Pattern: UnrestrictedSelfdestruct, Function: fn.Name, Line: s.Line})
				}
			case *minisol.DelegatecallStmt:
				// The extractor treats the low-level delegatecall statement
				// as visible only when the target is a state variable (the
				// library-address idiom); parameter targets appear inside
				// inline assembly in real contracts and are skipped. State-
				// variable targets are flagged unconditionally — the
				// guard-insensitivity that yields Figure 7's 0/3 precision.
				if _, isIdent := s.Target.(*minisol.IdentExpr); isIdent && targetIsStateVar(a.contract, s.Target) {
					out = append(out, Violation{Pattern: UnrestrictedDelegateCall, Function: fn.Name, Line: s.Line})
				}
			case *minisol.AssignStmt:
				if !seenSenderCheck && !condGuard && writesNonSenderState(a.contract, s) {
					out = append(out, Violation{Pattern: UnrestrictedWrite, Function: fn.Name, Line: s.Line})
				}
			}
		}
	}
	walk(fn.Body, false)
	return out
}

// stmtsContainSenderCheck reports a require involving msg.sender.
func stmtsContainSenderCheck(stmts []minisol.Stmt) bool {
	found := false
	walkStmts(stmts, func(s minisol.Stmt) {
		if r, ok := s.(*minisol.RequireStmt); ok && exprChecksSender(r.Cond) {
			found = true
		}
	}, nil)
	return found
}

// exprChecksSender reports whether the expression scrutinizes msg.sender —
// a comparison against it or a mapping lookup keyed by it.
func exprChecksSender(e minisol.Expr) bool {
	found := false
	walkExpr(e, func(x minisol.Expr) {
		switch x := x.(type) {
		case *minisol.MsgExpr:
			if x.Field == "sender" {
				found = true
			}
		}
	})
	return found
}

// writesNonSenderState reports an assignment to contract state that is not
// the caller's own mapping entry.
func writesNonSenderState(c *minisol.Contract, s *minisol.AssignStmt) bool {
	switch lhs := s.LHS.(type) {
	case *minisol.IdentExpr:
		return stateVarNamed(c, lhs.Name)
	case *minisol.IndexExpr:
		if msg, ok := lhs.Key.(*minisol.MsgExpr); ok && msg.Field == "sender" {
			return false // writing your own entry is permitted by the pattern
		}
		return true
	}
	return false
}

func stateVarNamed(c *minisol.Contract, name string) bool {
	for _, v := range c.Vars {
		if v.Name == name {
			return true
		}
	}
	return false
}

func targetIsStateVar(c *minisol.Contract, e minisol.Expr) bool {
	id, ok := e.(*minisol.IdentExpr)
	return ok && stateVarNamed(c, id.Name)
}

// --- small AST walkers ---

func walkStmts(stmts []minisol.Stmt, visitStmt func(minisol.Stmt), visitExpr func(minisol.Expr)) {
	for _, s := range stmts {
		if visitStmt != nil {
			visitStmt(s)
		}
		switch s := s.(type) {
		case *minisol.IfStmt:
			walkExprMaybe(s.Cond, visitExpr)
			walkStmts(s.Then, visitStmt, visitExpr)
			walkStmts(s.Else, visitStmt, visitExpr)
		case *minisol.WhileStmt:
			walkExprMaybe(s.Cond, visitExpr)
			walkStmts(s.Body, visitStmt, visitExpr)
		case *minisol.RequireStmt:
			walkExprMaybe(s.Cond, visitExpr)
		case *minisol.AssignStmt:
			walkExprMaybe(s.LHS, visitExpr)
			walkExprMaybe(s.RHS, visitExpr)
		case *minisol.DeclStmt:
			walkExprMaybe(s.Init, visitExpr)
		case *minisol.ExprStmt:
			walkExprMaybe(s.X, visitExpr)
		case *minisol.SelfdestructStmt:
			walkExprMaybe(s.Beneficiary, visitExpr)
		case *minisol.DelegatecallStmt:
			walkExprMaybe(s.Target, visitExpr)
		case *minisol.TransferStmt:
			walkExprMaybe(s.To, visitExpr)
			walkExprMaybe(s.Amount, visitExpr)
		case *minisol.ReturnStmt:
			walkExprMaybe(s.Value, visitExpr)
		}
	}
}

func walkExprMaybe(e minisol.Expr, visit func(minisol.Expr)) {
	if e == nil || visit == nil {
		return
	}
	walkExpr(e, visit)
}

func walkExpr(e minisol.Expr, visit func(minisol.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch e := e.(type) {
	case *minisol.IndexExpr:
		walkExpr(e.Base, visit)
		walkExpr(e.Key, visit)
	case *minisol.BinaryExpr:
		walkExpr(e.L, visit)
		walkExpr(e.R, visit)
	case *minisol.UnaryExpr:
		walkExpr(e.X, visit)
	case *minisol.CallExpr:
		for _, a := range e.Args {
			walkExpr(a, visit)
		}
	}
}

// Flagged reports whether any violation matches the pattern.
func Flagged(vs []Violation, p Pattern) bool {
	for _, v := range vs {
		if v.Pattern == p {
			return true
		}
	}
	return false
}
