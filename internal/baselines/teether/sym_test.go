package teether

import (
	"math/rand"
	"testing"

	"ethainter/internal/u256"
)

func TestBackSolveChains(t *testing.T) {
	attacker := u256.MustHex("0xabcd")
	// SHR(224, cd0) == selector  =>  cd0 = selector << 224.
	sel := u256.MustHex("0x41c0e1b5")
	expr := mkOp(0x1c, conc(u256.FromUint64(0xe0)), calldataWord(0))
	m := newModel(attacker)
	if !backSolve(expr, sel, m) {
		t.Fatal("backSolve failed on the dispatcher shape")
	}
	if got := m.words[0]; got != sel.Shl(224) {
		t.Fatalf("cd0 = %s", got)
	}
	// AND(mask, cd4) == attacker  =>  cd4 = attacker.
	mask := u256.One.Shl(160).Sub(u256.One)
	expr = mkOp(0x16, conc(mask), calldataWord(4))
	if !backSolve(expr, attacker, m) || m.words[4] != attacker {
		t.Fatal("mask inversion failed")
	}
	// ADD(5, cd8) == 12  =>  cd8 = 7.
	expr = mkOp(0x01, conc(u256.FromUint64(5)), calldataWord(8))
	if !backSolve(expr, u256.FromUint64(12), m) || m.words[8] != u256.FromUint64(7) {
		t.Fatal("ADD inversion failed")
	}
	// Conflicting assignment fails.
	if backSolve(calldataWord(8), u256.FromUint64(9), m) {
		t.Fatal("conflicting assignment must fail")
	}
	// Caller cannot be re-assigned.
	if backSolve(&sym{kind: symCaller}, u256.Zero, m) {
		t.Fatal("caller == 0 must be unsatisfiable for a fixed attacker")
	}
	if !backSolve(&sym{kind: symCaller}, attacker, m) {
		t.Fatal("caller == attacker must hold")
	}
}

func TestSolveSatisfiesConstraints(t *testing.T) {
	attacker := u256.MustHex("0xa77ac3e5")
	rng := rand.New(rand.NewSource(1))
	// require(cd4 == 42) && dispatcher match.
	sel := u256.MustHex("0x0d009297")
	constraints := []constraint{
		{cond: mkOp(0x14, mkOp(0x1c, conc(u256.FromUint64(0xe0)), calldataWord(0)), conc(sel)), nonzero: true},
		{cond: mkOp(0x14, calldataWord(4), conc(u256.FromUint64(42))), nonzero: true},
	}
	m, ok := solve(constraints, attacker, rng)
	if !ok {
		t.Fatal("solver failed on satisfiable constraints")
	}
	for i, c := range constraints {
		if !c.satisfied(m) {
			t.Fatalf("constraint %d unsatisfied", i)
		}
	}
	// Unsatisfiable: caller must be zero.
	bad := []constraint{{cond: mkOp(0x15, &sym{kind: symCaller}), nonzero: true}}
	if _, ok := solve(bad, attacker, rng); ok {
		t.Fatal("caller==0 should be unsolvable")
	}
}

func TestSymEvalStorageReplay(t *testing.T) {
	attacker := u256.MustHex("0xbeef")
	m := newModel(attacker)
	// sload(addr) replays the write log: the last matching write wins.
	addr := conc(u256.FromUint64(3))
	writes := []storeWrite{
		{addr: conc(u256.FromUint64(3)), val: conc(u256.FromUint64(1))},
		{addr: conc(u256.FromUint64(9)), val: conc(u256.FromUint64(2))},
		{addr: conc(u256.FromUint64(3)), val: &sym{kind: symCaller}},
	}
	load := &sym{kind: symSload, args: []*sym{addr}, writes: writes}
	if got := load.eval(m); got != attacker {
		t.Fatalf("sload replay = %s, want the caller", got)
	}
	// Unwritten slot evaluates to zero (static storage).
	other := &sym{kind: symSload, args: []*sym{conc(u256.FromUint64(7))}, writes: writes}
	if got := other.eval(m); !got.IsZero() {
		t.Fatalf("unwritten slot = %s", got)
	}
}

func TestSha3NodeEval(t *testing.T) {
	m := newModel(u256.MustHex("0x1"))
	m.words[4] = u256.FromUint64(99)
	h := &sym{kind: symSha3, args: []*sym{calldataWord(4), conc(u256.FromUint64(2))}}
	a := h.eval(m)
	b := h.eval(m)
	if a != b || a.IsZero() {
		t.Fatal("sha3 node must evaluate deterministically and nontrivially")
	}
	m.words[4] = u256.FromUint64(100)
	if h.eval(m) == a {
		t.Fatal("sha3 must depend on its inputs")
	}
}

func TestDependsOnInput(t *testing.T) {
	if conc(u256.One).dependsOnInput() {
		t.Error("constants are not input-dependent")
	}
	if !calldataWord(0).dependsOnInput() {
		t.Error("calldata is input-dependent")
	}
	nested := mkOp(0x01, conc(u256.One), mkOp(0x02, &sym{kind: symCaller}, conc(u256.One)))
	if !nested.dependsOnInput() {
		t.Error("caller under nesting is input-dependent")
	}
	load := &sym{kind: symSload, args: []*sym{conc(u256.Zero)},
		writes: []storeWrite{{addr: conc(u256.Zero), val: calldataWord(4)}}}
	if !load.dependsOnInput() {
		t.Error("a load over an input-written log is input-dependent")
	}
}

func TestConstantFoldingInMkOp(t *testing.T) {
	folded := mkOp(0x01, conc(u256.FromUint64(2)), conc(u256.FromUint64(3)))
	if !folded.isConc() || folded.val != u256.FromUint64(5) {
		t.Fatalf("mkOp should fold concrete operands: %+v", folded)
	}
	symbolic := mkOp(0x01, conc(u256.One), calldataWord(0))
	if symbolic.isConc() {
		t.Fatal("mkOp must stay symbolic with symbolic operands")
	}
}
