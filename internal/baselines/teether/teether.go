package teether

import (
	"math/rand"
	"time"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// Config bounds the exploration, mirroring teEther's practical budgets.
type Config struct {
	MaxPaths  int           // paths fully explored before giving up
	MaxSteps  int           // instructions per path
	MaxForks  int           // branch decisions per path
	Deadline  time.Duration // wall-clock budget (the paper's 120 s cutoff)
	TwoPhase  bool          // search one state-changing tx before the kill tx
	MaxStates int           // phase-1 states carried into phase 2
	Attacker  u256.U256     // attacker address used in solving
	Seed      int64
}

// DefaultConfig mirrors the evaluation setup.
func DefaultConfig() Config {
	return Config{
		MaxPaths:  400,
		MaxSteps:  4000,
		MaxForks:  32,
		Deadline:  2 * time.Second,
		TwoPhase:  true,
		MaxStates: 8,
		Attacker:  u256.MustHex("0xa77ac3e5a77ac3e5a77ac3e5a77ac3e5a77ac3e5"),
		Seed:      1,
	}
}

// FindingKind classifies a discovered exploit.
type FindingKind int

// The two vulnerability kinds teEther-style exploitation covers.
const (
	AccessibleSelfdestruct FindingKind = iota
	TaintedSelfdestruct
)

func (k FindingKind) String() string {
	if k == AccessibleSelfdestruct {
		return "accessible selfdestruct"
	}
	return "tainted selfdestruct"
}

// Finding is one proven path to SELFDESTRUCT with solved exploit calldata.
type Finding struct {
	Kind FindingKind
	// Exploit is the transaction sequence (calldata per tx) realizing it.
	Exploit [][]byte
	PC      int
}

// Result aggregates one contract's exploration.
type Result struct {
	Findings []Finding
	// TimedOut reports that the budget expired before exploration finished.
	TimedOut bool
	// Aborted counts paths dropped on unsupported constructs.
	Aborted int
	Paths   int
}

// Analyze symbolically executes the runtime bytecode from all-zero storage.
func Analyze(code []byte, cfg Config) *Result {
	e := &explorer{
		code:     code,
		cfg:      cfg,
		dests:    evm.JumpDests(code),
		deadline: time.Now().Add(cfg.Deadline),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		res:      &Result{},
	}
	// Phase 1 (optional): collect reachable storage-writing transactions.
	var states []phaseState
	states = append(states, phaseState{storage: map[u256.U256]*sym{}})
	if cfg.TwoPhase {
		for _, st := range e.findStateChanges() {
			states = append(states, st)
			if len(states) > cfg.MaxStates {
				break
			}
		}
	}
	for _, st := range states {
		e.searchSelfdestruct(st)
		if e.expired() {
			e.res.TimedOut = true
			break
		}
	}
	return e.res
}

// phaseState is a concrete storage state plus the transactions producing it.
type phaseState struct {
	storage map[u256.U256]*sym
	prefix  [][]byte
}

type explorer struct {
	code     []byte
	cfg      Config
	dests    map[int]bool
	deadline time.Time
	rng      *rand.Rand
	res      *Result
}

func (e *explorer) expired() bool { return time.Now().After(e.deadline) }

// pathState is one symbolic machine state.
type pathState struct {
	pc          int
	stack       []*sym
	mem         []memWrite
	memHazy     bool
	storage     map[u256.U256]*sym
	writes      []storeWrite
	constraints []constraint
	steps       int
	forks       int
}

type memWrite struct {
	off uint64
	val *sym
}

func (p *pathState) clone() *pathState {
	q := &pathState{
		pc:      p.pc,
		stack:   append([]*sym{}, p.stack...),
		mem:     append([]memWrite{}, p.mem...),
		memHazy: p.memHazy,
		storage: map[u256.U256]*sym{},
		writes:  append([]storeWrite{}, p.writes...),
		steps:   p.steps,
		forks:   p.forks,
	}
	for k, v := range p.storage {
		q.storage[k] = v
	}
	q.constraints = append([]constraint{}, p.constraints...)
	return q
}

func (p *pathState) push(s *sym) { p.stack = append(p.stack, s) }

func (p *pathState) pop() (*sym, bool) {
	if len(p.stack) == 0 {
		return nil, false
	}
	s := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	return s, true
}

// outcome describes how a path ended.
type outcome int

const (
	outAbort outcome = iota
	outStop          // STOP/RETURN: state-change commit point
	outRevert
	outSelfdestruct
)

// endState carries a finished path.
type endState struct {
	out         outcome
	beneficiary *sym
	pc          int
	state       *pathState
}

// explore runs DFS from the initial state, invoking sink for every finished
// path, within budgets.
func (e *explorer) explore(init *pathState, sink func(endState)) {
	stack := []*pathState{init}
	for len(stack) > 0 {
		if e.res.Paths >= e.cfg.MaxPaths || e.expired() {
			e.res.TimedOut = e.expired()
			return
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		end, forked := e.run(p)
		stack = append(stack, forked...)
		if end != nil {
			e.res.Paths++
			sink(*end)
		}
	}
}

// run executes one path until it ends or forks; forked continuations are
// returned for the DFS stack.
func (e *explorer) run(p *pathState) (*endState, []*pathState) {
	for {
		p.steps++
		if p.steps > e.cfg.MaxSteps || p.pc >= len(e.code) {
			if p.pc >= len(e.code) {
				return &endState{out: outStop, state: p, pc: p.pc}, nil
			}
			e.res.Aborted++
			return nil, nil
		}
		op := evm.Op(e.code[p.pc])
		switch {
		case op.IsPush():
			n := op.PushSize()
			var imm [32]byte
			end := p.pc + 1 + n
			src := e.code[p.pc+1 : min(end, len(e.code))]
			copy(imm[32-n:], src)
			p.push(conc(u256.FromBytes32(imm)))
			p.pc = end
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if len(p.stack) < n {
				return e.abort()
			}
			p.push(p.stack[len(p.stack)-n])
			p.pc++
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if len(p.stack) < n+1 {
				return e.abort()
			}
			top := len(p.stack) - 1
			p.stack[top], p.stack[top-n] = p.stack[top-n], p.stack[top]
			p.pc++
		case op == evm.JUMP:
			t, ok := p.pop()
			if !ok || !t.isConc() || !t.val.IsUint64() || !e.dests[int(t.val.Uint64())] {
				return e.abort() // symbolic jump targets are unsupported
			}
			p.pc = int(t.val.Uint64())
		case op == evm.JUMPI:
			t, ok1 := p.pop()
			c, ok2 := p.pop()
			if !ok1 || !ok2 {
				return e.abort()
			}
			if c.isConc() {
				if c.val.IsZero() {
					p.pc++
					continue
				}
				if !t.isConc() || !t.val.IsUint64() || !e.dests[int(t.val.Uint64())] {
					return e.abort()
				}
				p.pc = int(t.val.Uint64())
				continue
			}
			if p.forks >= e.cfg.MaxForks {
				e.res.Aborted++
				return nil, nil
			}
			p.forks++
			var forks []*pathState
			// Taken branch.
			if t.isConc() && t.val.IsUint64() && e.dests[int(t.val.Uint64())] {
				taken := p.clone()
				taken.constraints = append(taken.constraints, constraint{cond: c, nonzero: true})
				taken.pc = int(t.val.Uint64())
				forks = append(forks, taken)
			}
			// Fallthrough branch.
			p.constraints = append(p.constraints, constraint{cond: c, nonzero: false})
			p.pc++
			forks = append(forks, p)
			return nil, forks
		case op == evm.JUMPDEST:
			p.pc++
		case op == evm.STOP:
			return &endState{out: outStop, state: p, pc: p.pc}, nil
		case op == evm.RETURN:
			p.pop()
			p.pop()
			return &endState{out: outStop, state: p, pc: p.pc}, nil
		case op == evm.REVERT, op == evm.INVALID:
			return &endState{out: outRevert, state: p, pc: p.pc}, nil
		case op == evm.SELFDESTRUCT:
			b, ok := p.pop()
			if !ok {
				return e.abort()
			}
			return &endState{out: outSelfdestruct, beneficiary: b, state: p, pc: p.pc}, nil
		default:
			if !e.step(p, op) {
				return e.abort()
			}
		}
	}
}

func (e *explorer) abort() (*endState, []*pathState) {
	e.res.Aborted++
	return nil, nil
}

// step handles straight-line value operations.
func (e *explorer) step(p *pathState, op evm.Op) bool {
	popN := func(n int) ([]*sym, bool) {
		if len(p.stack) < n {
			return nil, false
		}
		out := make([]*sym, n)
		for i := 0; i < n; i++ {
			v, _ := p.pop()
			out[i] = v
		}
		return out, true
	}
	switch op {
	case evm.CALLER:
		p.push(&sym{kind: symCaller})
	case evm.CALLVALUE:
		p.push(&sym{kind: symCallvalue})
	case evm.CALLDATASIZE:
		p.push(&sym{kind: symCalldataSize})
	case evm.CALLDATALOAD:
		off, ok := p.pop()
		if !ok {
			return false
		}
		if off.isConc() && off.val.IsUint64() {
			p.push(calldataWord(int(off.val.Uint64())))
		} else {
			p.push(&sym{kind: symUnknown})
		}
	case evm.MLOAD:
		off, ok := p.pop()
		if !ok {
			return false
		}
		p.push(e.mload(p, off))
	case evm.MSTORE:
		args, ok := popN(2)
		if !ok {
			return false
		}
		if args[0].isConc() && args[0].val.IsUint64() {
			p.mem = append(p.mem, memWrite{off: args[0].val.Uint64(), val: args[1]})
		} else {
			p.memHazy = true
		}
	case evm.MSTORE8:
		if _, ok := popN(2); !ok {
			return false
		}
		p.memHazy = true
	case evm.SLOAD:
		key, ok := p.pop()
		if !ok {
			return false
		}
		if key.isConc() {
			if v, has := p.storage[key.val]; has {
				p.push(v)
			} else {
				p.push(zeroSym)
			}
		} else {
			p.push(&sym{kind: symSload, args: []*sym{key}, writes: append([]storeWrite{}, p.writes...)})
		}
	case evm.SSTORE:
		args, ok := popN(2)
		if !ok {
			return false
		}
		if args[0].isConc() {
			p.storage[args[0].val] = args[1]
			p.writes = append(p.writes, storeWrite{addr: args[0], val: args[1]})
		} else {
			// Symbolic-address stores are recorded for symbolic loads but
			// make the concrete map unreliable; keep going (teEther
			// concretizes; we approximate).
			p.writes = append(p.writes, storeWrite{addr: args[0], val: args[1]})
		}
	case evm.SHA3:
		args, ok := popN(2)
		if !ok {
			return false
		}
		if words, resolved := e.hashRegion(p, args[0], args[1]); resolved {
			p.push(&sym{kind: symSha3, args: words})
		} else {
			p.push(&sym{kind: symUnknown})
		}
	case evm.ADDRESS, evm.ORIGIN, evm.COINBASE, evm.TIMESTAMP, evm.NUMBER,
		evm.DIFFICULTY, evm.GASLIMIT, evm.CHAINID, evm.GASPRICE, evm.MSIZE,
		evm.GAS, evm.PC, evm.SELFBALANCE, evm.RETURNDATASIZE, evm.CODESIZE:
		p.push(&sym{kind: symUnknown})
	case evm.BALANCE, evm.EXTCODESIZE, evm.EXTCODEHASH, evm.BLOCKHASH:
		if _, ok := popN(1); !ok {
			return false
		}
		p.push(&sym{kind: symUnknown})
	case evm.POP:
		if _, ok := p.pop(); !ok {
			return false
		}
	case evm.CALLDATACOPY, evm.CODECOPY, evm.RETURNDATACOPY:
		if _, ok := popN(3); !ok {
			return false
		}
		p.memHazy = true
	case evm.EXTCODECOPY:
		if _, ok := popN(4); !ok {
			return false
		}
		p.memHazy = true
	case evm.CALL, evm.CALLCODE:
		if _, ok := popN(7); !ok {
			return false
		}
		p.memHazy = true
		p.push(&sym{kind: symUnknown})
	case evm.DELEGATECALL, evm.STATICCALL:
		if _, ok := popN(6); !ok {
			return false
		}
		p.memHazy = true
		p.push(&sym{kind: symUnknown})
	case evm.CREATE:
		if _, ok := popN(3); !ok {
			return false
		}
		p.push(&sym{kind: symUnknown})
	case evm.CREATE2:
		if _, ok := popN(4); !ok {
			return false
		}
		p.push(&sym{kind: symUnknown})
	default:
		if op.IsLog() {
			if _, ok := popN(op.Pops()); !ok {
				return false
			}
			break
		}
		info := op
		pops := info.Pops()
		args, ok := popN(pops)
		if !ok {
			return false
		}
		if info.Pushes() == 1 {
			p.push(mkOp(byte(op), args...))
		} else if info.Pushes() != 0 {
			return false
		}
	}
	p.pc++
	return true
}

// mload resolves a memory read against the path's write log.
func (e *explorer) mload(p *pathState, off *sym) *sym {
	if !off.isConc() || !off.val.IsUint64() {
		return &sym{kind: symUnknown}
	}
	o := off.val.Uint64()
	for i := len(p.mem) - 1; i >= 0; i-- {
		if p.mem[i].off == o {
			return p.mem[i].val
		}
	}
	if p.memHazy {
		return &sym{kind: symUnknown}
	}
	return zeroSym
}

// hashRegion resolves SHA3 over 32-byte-aligned constant regions.
func (e *explorer) hashRegion(p *pathState, off, length *sym) ([]*sym, bool) {
	if !off.isConc() || !length.isConc() || !off.val.IsUint64() || !length.val.IsUint64() {
		return nil, false
	}
	n := length.val.Uint64()
	if n == 0 || n > 8*32 || n%32 != 0 {
		return nil, false
	}
	var words []*sym
	for w := uint64(0); w < n/32; w++ {
		words = append(words, e.mload(p, conc(u256.FromUint64(off.val.Uint64()+32*w))))
	}
	return words, true
}

// findStateChanges runs phase 1: paths committing storage writes whose
// constraints solve, yielding concrete post-states for phase 2.
func (e *explorer) findStateChanges() []phaseState {
	var out []phaseState
	init := &pathState{storage: map[u256.U256]*sym{}}
	e.explore(init, func(end endState) {
		if end.out != outStop || len(end.state.writes) == 0 {
			return
		}
		m, ok := solve(end.state.constraints, e.cfg.Attacker, e.rng)
		if !ok {
			return
		}
		// Calldata words that feed only the stores (not the path condition)
		// are free; pick the attacker's address for them — teEther's
		// "critical path" instantiation.
		free := map[int]bool{}
		for _, w := range end.state.writes {
			w.addr.collectWords(free)
			w.val.collectWords(free)
		}
		for off := range free {
			if _, set := m.words[off]; !set {
				m.words[off] = e.cfg.Attacker
				if uint64(off+32) > m.dataSize {
					m.dataSize = uint64(off + 32)
				}
			}
		}
		post := map[u256.U256]*sym{}
		for _, w := range end.state.writes {
			post[w.addr.eval(m)] = conc(w.val.eval(m))
		}
		out = append(out, phaseState{
			storage: post,
			prefix:  [][]byte{buildCalldata(m)},
		})
	})
	return out
}

// searchSelfdestruct runs the kill search from a given storage state.
func (e *explorer) searchSelfdestruct(st phaseState) {
	init := &pathState{storage: map[u256.U256]*sym{}}
	for k, v := range st.storage {
		init.storage[k] = v
	}
	e.explore(init, func(end endState) {
		if end.out != outSelfdestruct {
			return
		}
		m, ok := solve(end.state.constraints, e.cfg.Attacker, e.rng)
		if !ok {
			return
		}
		kind := AccessibleSelfdestruct
		if end.beneficiary != nil && end.beneficiary.dependsOnInput() {
			kind = TaintedSelfdestruct
		}
		exploit := append(append([][]byte{}, st.prefix...), buildCalldata(m))
		e.res.Findings = append(e.res.Findings, Finding{Kind: kind, Exploit: exploit, PC: end.pc})
	})
}

// buildCalldata materializes the model's calldata bytes.
func buildCalldata(m *model) []byte {
	size := int(m.dataSize)
	for off := range m.words {
		if off+32 > size {
			size = off + 32
		}
	}
	if size < 4 {
		size = 4
	}
	data := make([]byte, size)
	// Apply word writes in ascending offset order so overlapping regions
	// (offset 0 selector word vs. argument words) compose deterministically.
	offs := make([]int, 0, len(m.words))
	for off := range m.words {
		offs = append(offs, off)
	}
	for i := 0; i < len(offs); i++ {
		for j := i + 1; j < len(offs); j++ {
			if offs[j] < offs[i] {
				offs[i], offs[j] = offs[j], offs[i]
			}
		}
	}
	for _, off := range offs {
		w := m.words[off].Bytes32()
		copy(data[off:min(off+32, len(data))], w[:])
	}
	return data
}

// Flagged reports whether any finding matches the kind.
func Flagged(r *Result, k FindingKind) bool {
	for _, f := range r.Findings {
		if f.Kind == k {
			return true
		}
	}
	return false
}
