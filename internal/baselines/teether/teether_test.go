package teether_test

import (
	"testing"

	"ethainter/internal/baselines/teether"
	"ethainter/internal/chain"
	"ethainter/internal/evm"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

func run(t *testing.T, src string, cfg teether.Config) *teether.Result {
	t.Helper()
	out, err := minisol.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return teether.Analyze(out.Runtime, cfg)
}

// replay validates a generated exploit against the real EVM: deploy the
// contract (with its constructor!) and fire the exploit transactions.
func replay(t *testing.T, src string, exploit [][]byte) bool {
	t.Helper()
	out := minisol.MustCompile(src)
	c := chain.New()
	deployer := c.NewAccount(u256.FromUint64(1_000_000))
	r := c.Deploy(deployer, out.Deploy, u256.Zero)
	if r.Err != nil {
		t.Fatalf("deploy: %v", r.Err)
	}
	// The solver baked the attacker address into the exploit (e.g. as the
	// owner to install); replay from exactly that account.
	attacker := evm.AddressFromWord(teether.DefaultConfig().Attacker)
	c.State.CreateAccount(attacker)
	c.State.AddBalance(attacker, u256.FromUint64(1_000_000))
	c.State.Finalize()
	for _, data := range exploit {
		c.Call(attacker, r.Created, data, u256.Zero)
	}
	return c.IsDestroyed(r.Created)
}

func TestFindsUnguardedSelfdestruct(t *testing.T) {
	res := run(t, minisol.AccessibleSelfdestructSource, teether.DefaultConfig())
	if !teether.Flagged(res, teether.AccessibleSelfdestruct) {
		t.Fatalf("missed unguarded selfdestruct: %+v", res)
	}
	// The generated exploit must actually destroy the contract.
	destroyed := false
	for _, f := range res.Findings {
		if replay(t, minisol.AccessibleSelfdestructSource, f.Exploit) {
			destroyed = true
		}
	}
	if !destroyed {
		t.Error("no generated exploit actually destroys the contract")
	}
}

// With the constructor's storage effects invisible (zero storage), the
// two-phase search finds the initOwner -> kill sequence.
func TestTwoPhaseFindsInitOwnerKill(t *testing.T) {
	res := run(t, minisol.TaintedOwnerSource, teether.DefaultConfig())
	found := false
	for _, f := range res.Findings {
		if len(f.Exploit) == 2 {
			found = true
			if !replay(t, minisol.TaintedOwnerSource, f.Exploit) {
				t.Error("two-step exploit does not replay")
			}
		}
	}
	if !found && len(res.Findings) == 0 {
		t.Error("two-phase search should find the initOwner escalation")
	}
}

// The owner-guarded token kill is unreachable from zero storage with a
// non-zero caller: no findings (the precision side of symbolic execution).
func TestGuardedKillNotFlagged(t *testing.T) {
	res := run(t, minisol.SafeTokenSource, teether.DefaultConfig())
	if len(res.Findings) != 0 {
		t.Errorf("safe token flagged: %+v", res.Findings)
	}
}

// Victim's three-step escalation exceeds the two-transaction search depth:
// teEther misses what Ethainter catches (the completeness gap of Section 6.2).
func TestVictimCompositeMissed(t *testing.T) {
	res := run(t, minisol.VictimSource, teether.DefaultConfig())
	for _, f := range res.Findings {
		if replay(t, minisol.VictimSource, f.Exploit) {
			t.Errorf("unexpected working exploit within 2 transactions: %+v", f)
		}
	}
}

// Without TwoPhase even the initOwner contract is missed.
func TestSinglePhaseMissesComposite(t *testing.T) {
	cfg := teether.DefaultConfig()
	cfg.TwoPhase = false
	res := run(t, minisol.TaintedOwnerSource, cfg)
	if len(res.Findings) != 0 {
		t.Errorf("single-phase should not reach the guarded kill: %+v", res.Findings)
	}
}

// Budgets are honored: a pathological path budget aborts instead of hanging.
func TestBudgets(t *testing.T) {
	cfg := teether.DefaultConfig()
	cfg.MaxPaths = 1
	cfg.MaxSteps = 50
	res := run(t, minisol.SafeTokenSource, cfg)
	if res.Paths > 1 {
		t.Errorf("paths = %d, budget was 1", res.Paths)
	}
}
