// Package teether reimplements the teEther baseline (Krupp & Rossow, USENIX
// Security 2018) as the paper's Section 6.2 comparison uses it: a symbolic
// executor over EVM bytecode that searches for paths to SELFDESTRUCT,
// solves the path constraints for concrete calldata, and emits an exploit
// transaction sequence. Storage starts from all zeros ("we evaluate it purely
// as a static tool"), paths and solving are budget-bounded, and unresolvable
// constructs abort the path — the sources of the completeness gap the
// comparison demonstrates.
package teether

import (
	"math/rand"

	"ethainter/internal/crypto"
	"ethainter/internal/u256"
)

// symKind enumerates symbolic value node kinds.
type symKind int

const (
	symConc     symKind = iota // concrete value
	symCalldata                // 32-byte word at a concrete calldata offset
	symCaller
	symCallvalue
	symCalldataSize
	symOp      // operator over argument nodes
	symSha3    // keccak over a list of 32-byte word nodes
	symSload   // load from (symbolic address, write-log prefix)
	symUnknown // untracked (external call results, hazy memory)
)

// sym is a node in a symbolic expression DAG.
type sym struct {
	kind symKind
	val  u256.U256 // symConc
	off  int       // symCalldata: byte offset
	op   byte      // symOp: an evm opcode byte
	args []*sym

	// symSload: the address expression is args[0]; writes is the storage
	// write log visible to this load (earlier writes in the same path).
	writes []storeWrite
}

// storeWrite is one SSTORE recorded on a path.
type storeWrite struct {
	addr *sym
	val  *sym
}

func conc(v u256.U256) *sym { return &sym{kind: symConc, val: v} }

var (
	zeroSym = conc(u256.Zero)
	oneSym  = conc(u256.One)
)

func calldataWord(off int) *sym { return &sym{kind: symCalldata, off: off} }

func (s *sym) isConc() bool { return s.kind == symConc }

// model assigns concrete values to the symbolic inputs of one transaction.
type model struct {
	caller    u256.U256
	callvalue u256.U256
	words     map[int]u256.U256 // calldata byte offset -> 32-byte word
	dataSize  uint64
}

func newModel(attacker u256.U256) *model {
	return &model{caller: attacker, words: map[int]u256.U256{}}
}

// eval computes the node's concrete value under the model. Unknown nodes
// evaluate to zero (constraints over them will generally fail, dropping the
// candidate — the conservative choice).
func (s *sym) eval(m *model) u256.U256 {
	switch s.kind {
	case symConc:
		return s.val
	case symCalldata:
		return m.words[s.off]
	case symCaller:
		return m.caller
	case symCallvalue:
		return m.callvalue
	case symCalldataSize:
		return u256.FromUint64(m.dataSize)
	case symUnknown:
		return u256.Zero
	case symSha3:
		var buf []byte
		for _, w := range s.args {
			b := w.eval(m).Bytes32()
			buf = append(buf, b[:]...)
		}
		return u256.FromBytes32(crypto.Keccak256(buf))
	case symSload:
		addr := s.args[0].eval(m)
		out := u256.Zero
		for _, w := range s.writes {
			if w.addr.eval(m) == addr {
				out = w.val.eval(m)
			}
		}
		return out
	case symOp:
		return evalOp(s.op, s.args, m)
	}
	return u256.Zero
}

// evalOp applies EVM operator semantics concretely.
func evalOp(op byte, args []*sym, m *model) u256.U256 {
	a := func(i int) u256.U256 { return args[i].eval(m) }
	boolW := func(b bool) u256.U256 {
		if b {
			return u256.One
		}
		return u256.Zero
	}
	switch op {
	case 0x01:
		return a(0).Add(a(1))
	case 0x02:
		return a(0).Mul(a(1))
	case 0x03:
		return a(0).Sub(a(1))
	case 0x04:
		return a(0).Div(a(1))
	case 0x05:
		return a(0).SDiv(a(1))
	case 0x06:
		return a(0).Mod(a(1))
	case 0x07:
		return a(0).SMod(a(1))
	case 0x08:
		return a(0).AddMod(a(1), a(2))
	case 0x09:
		return a(0).MulMod(a(1), a(2))
	case 0x0a:
		return a(0).Exp(a(1))
	case 0x0b:
		return a(1).SignExtend(a(0))
	case 0x10:
		return boolW(a(0).Lt(a(1)))
	case 0x11:
		return boolW(a(0).Gt(a(1)))
	case 0x12:
		return boolW(a(0).Slt(a(1)))
	case 0x13:
		return boolW(a(0).Sgt(a(1)))
	case 0x14:
		return boolW(a(0) == a(1))
	case 0x15:
		return boolW(a(0).IsZero())
	case 0x16:
		return a(0).And(a(1))
	case 0x17:
		return a(0).Or(a(1))
	case 0x18:
		return a(0).Xor(a(1))
	case 0x19:
		return a(0).Not()
	case 0x1a:
		return a(1).Byte(a(0))
	case 0x1b:
		return shiftEval(a(0), a(1), u256.U256.Shl)
	case 0x1c:
		return shiftEval(a(0), a(1), u256.U256.Shr)
	case 0x1d:
		return shiftEval(a(0), a(1), u256.U256.Sar)
	}
	return u256.Zero
}

func shiftEval(shift, val u256.U256, f func(u256.U256, uint) u256.U256) u256.U256 {
	if !shift.IsUint64() || shift.Uint64() > 255 {
		shift = u256.FromUint64(256)
	}
	return f(val, uint(shift.Uint64()))
}

// mkOp builds an operator node, constant-folding when every argument is
// concrete.
func mkOp(op byte, args ...*sym) *sym {
	allConc := true
	for _, a := range args {
		if !a.isConc() {
			allConc = false
			break
		}
	}
	n := &sym{kind: symOp, op: op, args: args}
	if allConc {
		return conc(n.eval(nil2()))
	}
	return n
}

// nil2 returns an empty model for folding concrete nodes.
func nil2() *model { return &model{words: map[int]u256.U256{}} }

// dependsOnInput reports whether the node reads calldata, the caller, or the
// call value — the taint test classifying tainted vs accessible selfdestruct.
func (s *sym) dependsOnInput() bool {
	switch s.kind {
	case symCalldata, symCaller, symCallvalue:
		return true
	case symConc, symUnknown, symCalldataSize:
		return false
	}
	for _, a := range s.args {
		if a.dependsOnInput() {
			return true
		}
	}
	if s.kind == symSload {
		for _, w := range s.writes {
			if w.addr.dependsOnInput() || w.val.dependsOnInput() {
				return true
			}
		}
	}
	return false
}

// collectWords gathers the calldata byte offsets the node mentions.
func (s *sym) collectWords(into map[int]bool) {
	switch s.kind {
	case symCalldata:
		into[s.off] = true
	case symSload:
		s.args[0].collectWords(into)
		for _, w := range s.writes {
			w.addr.collectWords(into)
			w.val.collectWords(into)
		}
	default:
		for _, a := range s.args {
			a.collectWords(into)
		}
	}
}

// collectConsts harvests concrete leaves as solver candidates.
func (s *sym) collectConsts(into map[u256.U256]bool) {
	if s.kind == symConc {
		into[s.val] = true
		return
	}
	for _, a := range s.args {
		a.collectConsts(into)
	}
	if s.kind == symSload {
		for _, w := range s.writes {
			w.addr.collectConsts(into)
			w.val.collectConsts(into)
		}
	}
}

// constraint is one recorded branch decision.
type constraint struct {
	cond    *sym
	nonzero bool // the branch requires cond != 0
}

func (c constraint) satisfied(m *model) bool {
	return c.cond.eval(m).IsZero() != c.nonzero
}

// backSolve attempts to satisfy expr == target by inverting simple operator
// chains down to a single calldata word, assigning it in the model. Returns
// false when the chain is not invertible or the assignment conflicts.
func backSolve(expr *sym, target u256.U256, m *model) bool {
	switch expr.kind {
	case symCalldata:
		if cur, ok := m.words[expr.off]; ok {
			return cur == target
		}
		m.words[expr.off] = target
		return true
	case symCaller:
		return m.caller == target
	case symCallvalue:
		m.callvalue = target
		return true
	case symConc:
		return expr.val == target
	case symOp:
		switch expr.op {
		case 0x1c: // SHR(shift, x): x >> s == t  <=  x = t << s
			if expr.args[0].isConc() && expr.args[0].val.IsUint64() {
				s := uint(expr.args[0].val.Uint64() % 256)
				return backSolve(expr.args[1], target.Shl(s), m)
			}
		case 0x1b: // SHL(shift, x)
			if expr.args[0].isConc() && expr.args[0].val.IsUint64() {
				s := uint(expr.args[0].val.Uint64() % 256)
				return backSolve(expr.args[1], target.Shr(s), m)
			}
		case 0x16: // AND(mask, x) or AND(x, mask)
			for i := 0; i < 2; i++ {
				if expr.args[i].isConc() && target.And(expr.args[i].val) == target {
					return backSolve(expr.args[1-i], target, m)
				}
			}
		case 0x01: // ADD
			for i := 0; i < 2; i++ {
				if expr.args[i].isConc() {
					return backSolve(expr.args[1-i], target.Sub(expr.args[i].val), m)
				}
			}
		case 0x03: // SUB(x, c) == t  <=  x = t + c
			if expr.args[1].isConc() {
				return backSolve(expr.args[0], target.Add(expr.args[1].val), m)
			}
		case 0x04: // DIV(x, c) == t  <=  x = t * c (first preimage)
			if expr.args[1].isConc() && !expr.args[1].val.IsZero() {
				return backSolve(expr.args[0], target.Mul(expr.args[1].val), m)
			}
		case 0x15: // ISZERO(x) == 1  <=  x = 0
			if target == u256.One {
				return backSolve(expr.args[0], u256.Zero, m)
			}
		case 0x14: // EQ(a, b) == 1
			if target == u256.One {
				if expr.args[0].isConc() {
					return backSolve(expr.args[1], expr.args[0].val, m)
				}
				if expr.args[1].isConc() {
					return backSolve(expr.args[0], expr.args[1].val, m)
				}
			}
		}
	}
	return false
}

// solve searches for a model satisfying every constraint: unit propagation by
// back-solving equality-shaped constraints, then candidate enumeration and
// random hill climbing over the remaining calldata words.
func solve(constraints []constraint, attacker u256.U256, rng *rand.Rand) (*model, bool) {
	m := newModel(attacker)
	// Unit propagation.
	for _, c := range constraints {
		if !c.nonzero {
			continue
		}
		e := c.cond
		// require-style: EQ / ISZERO chains wanting truth.
		backSolve(e, u256.One, m)
	}
	// Word universe.
	words := map[int]bool{}
	candidates := map[u256.U256]bool{
		u256.Zero: true, u256.One: true, attacker: true,
		u256.FromUint64(2): true, u256.One.Shl(160).Sub(u256.One): true,
	}
	for _, c := range constraints {
		c.cond.collectWords(words)
		c.cond.collectConsts(candidates)
	}
	var wordList []int
	for w := range words {
		if _, set := m.words[w]; !set {
			wordList = append(wordList, w)
		}
	}
	var candList []u256.U256
	for c := range candidates {
		candList = append(candList, c)
	}
	fill := func() {
		for _, w := range wordList {
			if _, ok := m.words[w]; !ok {
				m.words[w] = attacker
			}
		}
		max := 0
		for w := range m.words {
			if w+32 > max {
				max = w + 32
			}
		}
		if max < 4 {
			max = 4
		}
		m.dataSize = uint64(max)
	}
	count := func() int {
		n := 0
		for _, c := range constraints {
			if c.satisfied(m) {
				n++
			}
		}
		return n
	}
	fill()
	if count() == len(constraints) {
		return m, true
	}
	// Hill climbing: mutate one unpropagated word at a time.
	best := count()
	for iter := 0; iter < 150 && len(wordList) > 0; iter++ {
		w := wordList[rng.Intn(len(wordList))]
		old := m.words[w]
		m.words[w] = candList[rng.Intn(len(candList))]
		fill()
		n := count()
		if n == len(constraints) {
			return m, true
		}
		if n >= best {
			best = n
		} else {
			m.words[w] = old
		}
	}
	return nil, false
}
