// Package securify reimplements the two Securify "violation patterns" the
// paper compares against (Section 6.2): "unrestricted write" and "missing
// input validation", over the same decompiled IR Ethainter uses.
//
// Faithful to the paper's characterization, this baseline deliberately lacks
// context sensitivity, data-structure modeling, ownership-guard taint, and
// taint-through-storage: mapping stores compile to hash arithmetic, so they
// are classified as unrestricted writes, and any calldata value that reaches
// a store/hash/memory/call without first appearing in some branch condition
// is a missing-input-validation violation. The result is the very high flag
// rate (and ~zero end-to-end precision) the comparison reports.
package securify

import (
	"fmt"
	"sort"

	"ethainter/internal/decompiler"
	"ethainter/internal/tac"
)

// Pattern names the two violation patterns.
type Pattern string

// The implemented patterns. UnrestrictedWrite and MissingInputValidation are
// the two the paper's comparison maps to Ethainter's vulnerabilities;
// TODAmount stands in for Securify's further patterns, only contributing to
// the "flagged for some violation" rate.
const (
	UnrestrictedWrite      Pattern = "unrestricted write"
	MissingInputValidation Pattern = "missing input validation"
	TODAmount              Pattern = "transaction order dependent amount"
)

// Violation is one flagged statement.
type Violation struct {
	Pattern Pattern
	PC      int
}

// Analyze runs both patterns over a decompiled program.
func Analyze(prog *tac.Program) []Violation {
	s := &state{prog: prog, dom: tac.ComputeDominators(prog)}
	s.computeShallowCallerGuards()
	s.computeCalldataTaint()
	s.computeValidated()

	var out []Violation
	seen := map[Violation]bool{}
	add := func(v Violation) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// TODAmount: a value-bearing CALL in a contract that also writes storage
	// (the amount could be front-run) — standing in for Securify's remaining
	// pattern set.
	hasValueCall, hasStore := false, false
	var firstCallPC int
	prog.AllStmts(func(st *tac.Stmt) {
		switch st.Op {
		case tac.CallOp, tac.Callcode:
			if !hasValueCall {
				firstCallPC = st.PC
			}
			hasValueCall = true
		case tac.Sstore:
			hasStore = true
		}
	})
	if hasValueCall && hasStore {
		add(Violation{Pattern: TODAmount, PC: firstCallPC})
	}

	prog.AllStmts(func(st *tac.Stmt) {
		switch st.Op {
		case tac.Sstore:
			// Unrestricted write: a calldata-influenced store (address or
			// value) not dominated by a direct caller check. Mapping writes
			// with user-supplied keys are the canonical hit: their hash
			// addresses are calldata-derived "pointer arithmetic".
			if !s.callerGuarded(st.Block) &&
				(s.cdTaint[st.Args[0]] || s.cdTaint[st.Args[1]]) {
				add(Violation{Pattern: UnrestrictedWrite, PC: st.PC})
			}
			s.checkMIV(st, []tac.VarID{st.Args[0], st.Args[1]}, add)
		case tac.Sha3:
			s.checkMIV(st, st.Args, add)
		case tac.CallOp, tac.Delegatecall, tac.Staticcall, tac.Callcode:
			s.checkMIV(st, st.Args[:2], add)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// AnalyzeBytecode decompiles and analyzes; decompilation failures are
// reported as analysis failures (Securify shares the EVM-lifting stage).
func AnalyzeBytecode(code []byte) ([]Violation, error) {
	prog, err := decompiler.Decompile(code)
	if err != nil {
		return nil, fmt.Errorf("securify: %w", err)
	}
	return Analyze(prog), nil
}

type state struct {
	prog *tac.Program
	dom  *tac.Dominators

	constAddr     map[tac.VarID]bool
	guardedBlocks map[*tac.Block]bool
	cdTaint       map[tac.VarID]bool
	validated     map[tac.VarID]bool
	memWrites     map[uint64][]*tac.Stmt
}

// computeShallowCallerGuards finds branches whose condition mentions CALLER
// within a shallow def cone — no memory edges, no hashing, no storage-shape
// reasoning (Securify's "owner-sender guards ... without propagation of
// taintedness into guards").
func (s *state) computeShallowCallerGuards() {
	s.guardedBlocks = map[*tac.Block]bool{}
	s.constAddr = map[tac.VarID]bool{}
	s.prog.AllStmts(func(st *tac.Stmt) {
		if st.Op == tac.Const {
			s.constAddr[st.Def] = true
		}
	})
	guardEntry := map[*tac.Block]bool{}
	for _, b := range s.prog.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != tac.Jumpi {
			continue
		}
		if !s.mentionsCaller(term.Args[1], 0) {
			continue
		}
		for _, succ := range b.Succs {
			if len(succ.Preds) == 1 {
				guardEntry[succ] = true
			}
		}
	}
	for _, b := range s.prog.Blocks {
		s.dom.Walk(b, func(d *tac.Block) bool {
			if guardEntry[d] {
				s.guardedBlocks[b] = true
				return false
			}
			return true
		})
	}
}

func (s *state) mentionsCaller(v tac.VarID, depth int) bool {
	if depth > 4 {
		return false
	}
	def := s.prog.DefSite(v)
	if def == nil {
		return false
	}
	if def.Op == tac.Caller {
		return true
	}
	if def.Op.IsArith() {
		for _, a := range def.Args {
			if s.mentionsCaller(a, depth+1) {
				return true
			}
		}
	}
	return false
}

func (s *state) callerGuarded(b *tac.Block) bool { return s.guardedBlocks[b] }

// memIndex groups MSTOREs by constant offset (constants are visible directly
// as Const defs; no folding — Securify's modeling is shallow on purpose).
func (s *state) memIndex() map[uint64][]*tac.Stmt {
	if s.memWrites != nil {
		return s.memWrites
	}
	s.memWrites = map[uint64][]*tac.Stmt{}
	s.prog.AllStmts(func(st *tac.Stmt) {
		if st.Op != tac.Mstore {
			return
		}
		if def := s.prog.DefSite(st.Args[0]); def != nil && def.Op == tac.Const && def.Val.IsUint64() {
			off := def.Val.Uint64()
			s.memWrites[off] = append(s.memWrites[off], st)
		}
	})
	return s.memWrites
}

// computeCalldataTaint propagates calldata taint through value operations and
// constant-offset memory cells (no storage, no guards — the pattern of the
// Securify code the paper cites).
func (s *state) computeCalldataTaint() {
	s.cdTaint = map[tac.VarID]bool{}
	mem := s.memIndex()
	for changed := true; changed; {
		changed = false
		s.prog.AllStmts(func(st *tac.Stmt) {
			if st.Def == tac.NoVar || s.cdTaint[st.Def] {
				return
			}
			switch {
			case st.Op == tac.Calldataload:
				s.cdTaint[st.Def] = true
				changed = true
			case st.Op == tac.Mload:
				if def := s.prog.DefSite(st.Args[0]); def != nil && def.Op == tac.Const && def.Val.IsUint64() {
					for _, w := range mem[def.Val.Uint64()] {
						if s.cdTaint[w.Args[1]] {
							s.cdTaint[st.Def] = true
							changed = true
							return
						}
					}
				}
			case st.Op.IsArith():
				for _, a := range st.Args {
					if s.cdTaint[a] {
						s.cdTaint[st.Def] = true
						changed = true
						return
					}
				}
			}
		})
	}
}

// computeValidated marks calldata-derived variables that appear in some
// branch condition's cone ("inputs that flow to a JUMPI"), following value
// ops and constant-offset memory cells backwards.
func (s *state) computeValidated() {
	s.validated = map[tac.VarID]bool{}
	mem := s.memIndex()
	var markCone func(v tac.VarID, depth int)
	markCone = func(v tac.VarID, depth int) {
		if depth > 8 || s.validated[v] {
			return
		}
		s.validated[v] = true
		def := s.prog.DefSite(v)
		if def == nil {
			return
		}
		switch {
		case def.Op == tac.Mload:
			if offDef := s.prog.DefSite(def.Args[0]); offDef != nil && offDef.Op == tac.Const && offDef.Val.IsUint64() {
				for _, w := range mem[offDef.Val.Uint64()] {
					markCone(w.Args[1], depth+1)
				}
			}
		case def.Op.IsArith():
			for _, a := range def.Args {
				markCone(a, depth+1)
			}
		}
	}
	s.prog.AllStmts(func(st *tac.Stmt) {
		if st.Op == tac.Jumpi {
			markCone(st.Args[1], 0)
		}
	})
	// Forward closure: a value derived only from validated inputs is itself
	// validated (a second load of a checked parameter's memory cell must not
	// re-flag).
	for changed := true; changed; {
		changed = false
		s.prog.AllStmts(func(st *tac.Stmt) {
			if st.Def == tac.NoVar || s.validated[st.Def] || !s.cdTaint[st.Def] {
				return
			}
			ok := false
			switch {
			case st.Op == tac.Mload:
				if offDef := s.prog.DefSite(st.Args[0]); offDef != nil && offDef.Op == tac.Const && offDef.Val.IsUint64() {
					writes := mem[offDef.Val.Uint64()]
					ok = len(writes) > 0
					for _, w := range writes {
						if s.cdTaint[w.Args[1]] && !s.validated[w.Args[1]] {
							ok = false
						}
					}
				}
			case st.Op.IsArith():
				ok = true
				for _, a := range st.Args {
					if s.cdTaint[a] && !s.validated[a] {
						ok = false
					}
				}
			}
			if ok {
				s.validated[st.Def] = true
				changed = true
			}
		})
	}
}

// checkMIV flags tainted-but-unvalidated operands at data-flow sinks.
func (s *state) checkMIV(st *tac.Stmt, args []tac.VarID, add func(Violation)) {
	for _, a := range args {
		if s.cdTaint[a] && !s.validated[a] {
			add(Violation{Pattern: MissingInputValidation, PC: st.PC})
			return
		}
	}
}

// Flagged reports whether any violation matches the pattern.
func Flagged(vs []Violation, p Pattern) bool {
	for _, v := range vs {
		if v.Pattern == p {
			return true
		}
	}
	return false
}
