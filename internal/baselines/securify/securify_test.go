package securify_test

import (
	"testing"

	"ethainter/internal/baselines/securify"
	"ethainter/internal/minisol"
)

func analyze(t *testing.T, src string) []securify.Violation {
	t.Helper()
	out, err := minisol.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vs, err := securify.AnalyzeBytecode(out.Runtime)
	if err != nil {
		t.Fatalf("securify: %v", err)
	}
	return vs
}

// The paper's central observation: the well-guarded token is heavily flagged
// because mapping stores look like unrestricted writes (no data-structure
// modeling) and unvalidated inputs reach stores.
func TestSafeTokenHeavilyFlagged(t *testing.T) {
	vs := analyze(t, minisol.SafeTokenSource)
	if !securify.Flagged(vs, securify.UnrestrictedWrite) {
		t.Error("mapping writes must be flagged as unrestricted (pointer arithmetic)")
	}
	if !securify.Flagged(vs, securify.MissingInputValidation) {
		t.Error("the 'to' parameter flows to a store without a check")
	}
	if len(vs) < 5 {
		t.Errorf("expected many violations on the token, got %d", len(vs))
	}
}

// A direct owner-guarded constant-slot write is the one shape the pattern
// does NOT flag as unrestricted.
func TestDirectOwnerGuardRecognized(t *testing.T) {
	src := `
contract Plain {
    address owner;
    uint256 config;
    constructor() { owner = msg.sender; }
    function setConfig(uint256 v) public {
        require(msg.sender == owner);
        config = v;
    }
}`
	vs := analyze(t, src)
	for _, v := range vs {
		if v.Pattern == securify.UnrestrictedWrite {
			t.Errorf("owner-guarded constant write flagged: %+v", v)
		}
	}
}

// Victim's composite vulnerability is invisible: every store there is either
// "restricted" (it cannot see taint into guards) or a mapping write flagged
// for the wrong reason — the flag does not correspond to the real exploit.
func TestVictimFlaggedForWrongReasons(t *testing.T) {
	vs := analyze(t, minisol.VictimSource)
	// Securify flags it (mapping writes), but identically to the safe token:
	// the signal carries no exploitability information.
	if !securify.Flagged(vs, securify.UnrestrictedWrite) {
		t.Error("victim's mapping writes should be flagged like any mapping write")
	}
}

// Validated inputs (used in a require comparison) are not MIV-flagged.
func TestValidatedInputNotFlagged(t *testing.T) {
	src := `
contract V {
    uint256 total;
    function add(uint256 v) public {
        require(v < 100);
        total = v;
    }
}`
	vs := analyze(t, src)
	if securify.Flagged(vs, securify.MissingInputValidation) {
		t.Errorf("checked input flagged: %+v", vs)
	}
}
