// Package tac defines the functional 3-address-code representation that the
// decompiler produces and the Ethainter analysis consumes. It corresponds to
// the Gigahorse-style IR the paper's Datalog implementation runs on: SSA
// statements grouped into basic blocks with an explicit CFG, phi functions at
// block entries, and a dominator tree.
package tac

import (
	"fmt"
	"strings"

	"ethainter/internal/u256"
)

// VarID identifies an SSA variable. NoVar marks statements without a result.
type VarID int

// NoVar is the absent-variable sentinel.
const NoVar VarID = -1

// OpKind enumerates TAC operations. They mirror EVM opcodes, but with
// explicit operands and results instead of stack effects, plus Const and Phi.
type OpKind int

// TAC operations.
const (
	Const OpKind = iota // Def := Val
	Phi                 // Def := phi(Args...), one arg per predecessor

	Add
	Mul
	Sub
	Div
	Sdiv
	Mod
	Smod
	Addmod
	Mulmod
	Exp
	Signextend
	Lt
	Gt
	Slt
	Sgt
	Eq
	Iszero
	And
	Or
	Xor
	Not
	Byte
	Shl
	Shr
	Sar

	Sha3 // Def := hash of memory [Args[0], Args[0]+Args[1])

	Address
	Balance
	Origin
	Caller
	Callvalue
	Calldataload
	Calldatasize
	Calldatacopy // (dstOff, srcOff, len)
	Codesize
	Codecopy
	Gasprice
	Extcodesize
	Extcodecopy
	Returndatasize
	Returndatacopy
	Extcodehash
	Blockhash
	Coinbase
	Timestamp
	Number
	Difficulty
	Gaslimit
	Chainid
	Selfbalance

	Mload   // Def := memory[Args[0]]
	Mstore  // memory[Args[0]] := Args[1]
	Mstore8 // memory byte
	Sload   // Def := storage[Args[0]]
	Sstore  // storage[Args[0]] := Args[1]

	Jump  // unconditional; Args[0] is the target expression
	Jumpi // conditional; Args[0] target, Args[1] condition
	Pc
	Msize
	Gas

	Log // Args: off, len, topics...

	Create       // Def := new address; Args: value, off, len
	Create2      // Args: value, off, len, salt
	CallOp       // Def := success; Args: gas, addr, value, inOff, inLen, outOff, outLen
	Callcode     // same shape as CallOp
	Delegatecall // Def := success; Args: gas, addr, inOff, inLen, outOff, outLen
	Staticcall   // Def := success; Args: gas, addr, inOff, inLen, outOff, outLen
	ReturnOp     // Args: off, len
	RevertOp     // Args: off, len
	Invalid
	SelfdestructOp // Args: beneficiary
	Stop
)

var opNames = map[OpKind]string{
	Const: "CONST", Phi: "PHI",
	Add: "ADD", Mul: "MUL", Sub: "SUB", Div: "DIV", Sdiv: "SDIV", Mod: "MOD",
	Smod: "SMOD", Addmod: "ADDMOD", Mulmod: "MULMOD", Exp: "EXP",
	Signextend: "SIGNEXTEND", Lt: "LT", Gt: "GT", Slt: "SLT", Sgt: "SGT",
	Eq: "EQ", Iszero: "ISZERO", And: "AND", Or: "OR", Xor: "XOR", Not: "NOT",
	Byte: "BYTE", Shl: "SHL", Shr: "SHR", Sar: "SAR", Sha3: "SHA3",
	Address: "ADDRESS", Balance: "BALANCE", Origin: "ORIGIN", Caller: "CALLER",
	Callvalue: "CALLVALUE", Calldataload: "CALLDATALOAD", Calldatasize: "CALLDATASIZE",
	Calldatacopy: "CALLDATACOPY", Codesize: "CODESIZE", Codecopy: "CODECOPY",
	Gasprice: "GASPRICE", Extcodesize: "EXTCODESIZE", Extcodecopy: "EXTCODECOPY",
	Returndatasize: "RETURNDATASIZE", Returndatacopy: "RETURNDATACOPY",
	Extcodehash: "EXTCODEHASH", Blockhash: "BLOCKHASH", Coinbase: "COINBASE",
	Timestamp: "TIMESTAMP", Number: "NUMBER", Difficulty: "DIFFICULTY",
	Gaslimit: "GASLIMIT", Chainid: "CHAINID", Selfbalance: "SELFBALANCE",
	Mload: "MLOAD", Mstore: "MSTORE", Mstore8: "MSTORE8", Sload: "SLOAD",
	Sstore: "SSTORE", Jump: "JUMP", Jumpi: "JUMPI", Pc: "PC", Msize: "MSIZE",
	Gas: "GAS", Log: "LOG", Create: "CREATE", Create2: "CREATE2",
	CallOp: "CALL", Callcode: "CALLCODE", Delegatecall: "DELEGATECALL",
	Staticcall: "STATICCALL", ReturnOp: "RETURN", RevertOp: "REVERT",
	Invalid: "INVALID", SelfdestructOp: "SELFDESTRUCT", Stop: "STOP",
}

func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OP(%d)", int(k))
}

// IsTerminator reports whether the operation ends its block with no
// fallthrough successor.
func (k OpKind) IsTerminator() bool {
	switch k {
	case Jump, ReturnOp, RevertOp, Invalid, SelfdestructOp, Stop:
		return true
	}
	return false
}

// IsArith reports whether the operation is a pure value operation ("OP" in
// the paper's abstract language): taint propagates from every argument to the
// result.
func (k OpKind) IsArith() bool {
	switch k {
	case Add, Mul, Sub, Div, Sdiv, Mod, Smod, Addmod, Mulmod, Exp, Signextend,
		Lt, Gt, Slt, Sgt, Eq, Iszero, And, Or, Xor, Not, Byte, Shl, Shr, Sar, Phi:
		return true
	}
	return false
}

// Stmt is one TAC statement.
type Stmt struct {
	Op    OpKind
	Def   VarID
	Args  []VarID
	Val   u256.U256 // Const only
	PC    int       // originating bytecode offset
	Block *Block
	Idx   int // position within Block.Stmts (phis excluded)

	// GIdx is the dense program-wide statement index in AllStmts order (block
	// order, phis first), assigned by BuildIndex/BuildIndexPrepared. Analysis
	// relations index by it instead of hashing *Stmt pointers.
	GIdx int32
}

func (s *Stmt) String() string {
	var b strings.Builder
	if s.Def != NoVar {
		fmt.Fprintf(&b, "v%d := ", s.Def)
	}
	b.WriteString(s.Op.String())
	if s.Op == Const {
		fmt.Fprintf(&b, " %s", s.Val)
		return b.String()
	}
	b.WriteString("(")
	for i, a := range s.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "v%d", a)
	}
	b.WriteString(")")
	return b.String()
}

// Block is a basic block. Phis precede Stmts conceptually; each phi's Args
// align with Preds.
type Block struct {
	ID    int
	PC    int // entry bytecode offset
	Depth int // operand-stack depth at entry (decompiler context)
	Phis  []*Stmt
	Stmts []*Stmt
	Preds []*Block
	Succs []*Block
}

// Label renders a stable human-readable block name.
func (b *Block) Label() string { return fmt.Sprintf("B%d@%d/%d", b.ID, b.PC, b.Depth) }

// Terminator returns the block's last statement, or nil for empty blocks.
func (b *Block) Terminator() *Stmt {
	if len(b.Stmts) == 0 {
		return nil
	}
	return b.Stmts[len(b.Stmts)-1]
}

// PublicFunction is a dispatcher-discovered external entry point.
type PublicFunction struct {
	Selector u256.U256 // the 4-byte selector as a stack word
	Entry    *Block
}

// SelectorBytes returns the selector as 4 bytes.
func (f *PublicFunction) SelectorBytes() [4]byte {
	b := f.Selector.Bytes32()
	return [4]byte{b[28], b[29], b[30], b[31]}
}

// Program is a decompiled contract.
type Program struct {
	Blocks    []*Block
	Entry     *Block
	Functions []*PublicFunction
	NumVars   int

	// Dense, VarID-indexed def/use tables (built by BuildIndex). Variable ids
	// are small consecutive integers allocated by the decompiler, so slices
	// beat maps by a wide margin on the analysis hot path.
	defSite []*Stmt
	uses    [][]*Stmt

	// numStmts is the total statement count (phis included), set alongside
	// GIdx by BuildIndex/BuildIndexPrepared. Stmt-indexed relations size by it.
	numStmts int
}

// NumStmts returns the total statement count (phis included) as indexed by
// Stmt.GIdx. Zero until BuildIndex/BuildIndexPrepared has run.
func (p *Program) NumStmts() int { return p.numStmts }

// IndexedVars returns the size of the variable-id space covered by the
// def/use index — at least NumVars, larger when a hand-built program used ids
// beyond it (BuildIndex self-sizes by scanning).
func (p *Program) IndexedVars() int { return len(p.defSite) }

// AllStmts iterates over every statement (phis first per block) in block
// order.
func (p *Program) AllStmts(visit func(*Stmt)) {
	for _, b := range p.Blocks {
		for _, s := range b.Phis {
			visit(s)
		}
		for _, s := range b.Stmts {
			visit(s)
		}
	}
}

// BuildIndex computes the dense def-site and use tables; call after
// construction or mutation. The tables self-size by scanning for the largest
// variable id, so hand-built programs that never set NumVars still index
// correctly; use lists are packed into one flat backing array sized by a
// counting pre-pass, so indexing allocates O(1) slices regardless of program
// size.
func (p *Program) BuildIndex() {
	// Manual nested loops instead of AllStmts: this runs once per decompiled
	// program on the sweep hot path, and the per-statement closure calls of
	// the visitor were a measurable fraction of translation time.
	maxID := p.NumVars - 1
	total := 0
	gidx := int32(0)
	for _, b := range p.Blocks {
		for _, s := range b.Phis {
			s.GIdx = gidx
			gidx++
			if int(s.Def) > maxID {
				maxID = int(s.Def)
			}
			for _, a := range s.Args {
				if int(a) > maxID {
					maxID = int(a)
				}
			}
			total += len(s.Args)
		}
		for _, s := range b.Stmts {
			s.GIdx = gidx
			gidx++
			if int(s.Def) > maxID {
				maxID = int(s.Def)
			}
			for _, a := range s.Args {
				if int(a) > maxID {
					maxID = int(a)
				}
			}
			total += len(s.Args)
		}
	}
	p.numStmts = int(gidx)
	n := maxID + 1
	p.defSite = make([]*Stmt, n)
	p.uses = make([][]*Stmt, n)
	counts := make([]int32, n)
	index := func(s *Stmt) {
		if s.Def != NoVar {
			p.defSite[s.Def] = s
		}
		for _, a := range s.Args {
			if a >= 0 {
				counts[a]++
			}
		}
	}
	for _, b := range p.Blocks {
		for _, s := range b.Phis {
			index(s)
		}
		for _, s := range b.Stmts {
			index(s)
		}
	}
	flat := make([]*Stmt, total)
	off := 0
	for v := range counts {
		c := int(counts[v])
		p.uses[v] = flat[off : off : off+c]
		off += c
	}
	for _, b := range p.Blocks {
		for _, s := range b.Phis {
			for _, a := range s.Args {
				if a >= 0 {
					p.uses[a] = append(p.uses[a], s)
				}
			}
		}
		for _, s := range b.Stmts {
			for _, a := range s.Args {
				if a >= 0 {
					p.uses[a] = append(p.uses[a], s)
				}
			}
		}
	}
}

// BuildIndexPrepared installs a precomputed def-site table and fills the use
// lists in a single pass — the builder (the decompiler's translator) already
// knows every def site and per-variable use count at emission time, so the
// max-id scan and counting pre-pass of BuildIndex are redundant work there.
// Requirements: len(defSite) == len(useCounts) == NumVars, defSite[v] is the
// unique statement defining v (nil if undefined), useCounts[v] is exactly the
// number of occurrences of v across all statement and phi argument lists, and
// totalUses is their sum. The use-list fill order is identical to BuildIndex:
// block order, phis before statements.
func (p *Program) BuildIndexPrepared(defSite []*Stmt, useCounts []int32, totalUses int) {
	p.defSite = defSite
	n := len(useCounts)
	p.uses = make([][]*Stmt, n)
	flat := make([]*Stmt, totalUses)
	off := 0
	for v := range useCounts {
		c := int(useCounts[v])
		p.uses[v] = flat[off : off : off+c]
		off += c
	}
	gidx := int32(0)
	for _, b := range p.Blocks {
		for _, s := range b.Phis {
			s.GIdx = gidx
			gidx++
			for _, a := range s.Args {
				if a >= 0 {
					p.uses[a] = append(p.uses[a], s)
				}
			}
		}
		for _, s := range b.Stmts {
			s.GIdx = gidx
			gidx++
			for _, a := range s.Args {
				if a >= 0 {
					p.uses[a] = append(p.uses[a], s)
				}
			}
		}
	}
	p.numStmts = int(gidx)
}

// DefSite returns the statement defining v, or nil.
func (p *Program) DefSite(v VarID) *Stmt {
	if v < 0 || int(v) >= len(p.defSite) {
		return nil
	}
	return p.defSite[v]
}

// Uses returns the statements using v.
func (p *Program) Uses(v VarID) []*Stmt {
	if v < 0 || int(v) >= len(p.uses) {
		return nil
	}
	return p.uses[v]
}

// Canonical renders the program in a complete, deterministic form for
// differential testing: every field that defines program identity — block
// ids, pcs, depths, entry, statement ops/defs/args/vals/pcs/idxs, phi
// arguments, edge lists, variable count, and discovered public functions —
// appears in a fixed order. Two programs are bit-identical (up to index
// tables, which are derived) iff their Canonical strings are equal.
func (p *Program) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "numvars %d\n", p.NumVars)
	if p.Entry != nil {
		fmt.Fprintf(&b, "entry B%d\n", p.Entry.ID)
	}
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "block %d pc=%d depth=%d\n", blk.ID, blk.PC, blk.Depth)
		b.WriteString(" preds")
		for _, pr := range blk.Preds {
			fmt.Fprintf(&b, " %d", pr.ID)
		}
		b.WriteString("\n succs")
		for _, su := range blk.Succs {
			fmt.Fprintf(&b, " %d", su.ID)
		}
		b.WriteString("\n")
		for _, s := range blk.Phis {
			fmt.Fprintf(&b, " phi v%d pc=%d :=", s.Def, s.PC)
			for _, a := range s.Args {
				fmt.Fprintf(&b, " v%d", a)
			}
			b.WriteString("\n")
		}
		for _, s := range blk.Stmts {
			fmt.Fprintf(&b, " stmt %d pc=%d %s v%d", s.Idx, s.PC, s.Op, s.Def)
			if s.Op == Const {
				fmt.Fprintf(&b, " val=%s", s.Val)
			}
			for _, a := range s.Args {
				fmt.Fprintf(&b, " v%d", a)
			}
			b.WriteString("\n")
		}
	}
	for _, f := range p.Functions {
		fmt.Fprintf(&b, "func sel=%s entry=B%d\n", f.Selector, f.Entry.ID)
	}
	return b.String()
}

// String renders the whole program for debugging.
func (p *Program) String() string {
	var b strings.Builder
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Label())
		if len(blk.Preds) > 0 {
			b.WriteString(" ; preds:")
			for _, pr := range blk.Preds {
				fmt.Fprintf(&b, " %s", pr.Label())
			}
		}
		b.WriteString("\n")
		for _, s := range blk.Phis {
			fmt.Fprintf(&b, "  %s\n", s)
		}
		for _, s := range blk.Stmts {
			fmt.Fprintf(&b, "  %s\n", s)
		}
		if len(blk.Succs) > 0 {
			b.WriteString("  ; succs:")
			for _, su := range blk.Succs {
				fmt.Fprintf(&b, " %s", su.Label())
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
