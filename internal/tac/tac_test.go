package tac

import (
	"strings"
	"testing"

	"ethainter/internal/u256"
)

// buildDiamond constructs the classic diamond CFG:
//
//	  A
//	 / \
//	B   C
//	 \ /
//	  D ── E
func buildDiamond() (*Program, map[string]*Block) {
	p := &Program{}
	blocks := map[string]*Block{}
	for i, name := range []string{"A", "B", "C", "D", "E"} {
		b := &Block{ID: i, PC: i * 10}
		blocks[name] = b
		p.Blocks = append(p.Blocks, b)
	}
	link := func(from, to string) {
		blocks[from].Succs = append(blocks[from].Succs, blocks[to])
		blocks[to].Preds = append(blocks[to].Preds, blocks[from])
	}
	link("A", "B")
	link("A", "C")
	link("B", "D")
	link("C", "D")
	link("D", "E")
	p.Entry = blocks["A"]
	return p, blocks
}

func TestDominatorsDiamond(t *testing.T) {
	p, b := buildDiamond()
	dom := ComputeDominators(p)
	cases := []struct {
		a, c string
		want bool
	}{
		{"A", "A", true}, {"A", "B", true}, {"A", "C", true}, {"A", "D", true}, {"A", "E", true},
		{"B", "D", false}, {"C", "D", false}, // join point: neither branch dominates
		{"D", "E", true},
		{"B", "C", false}, {"E", "D", false},
	}
	for _, c := range cases {
		if got := dom.Dominates(b[c.a], b[c.c]); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a, c.c, got, c.want)
		}
	}
	if dom.Idom(b["D"]) != b["A"] {
		t.Errorf("idom(D) = %v, want A", dom.Idom(b["D"]).Label())
	}
	if dom.Idom(b["E"]) != b["D"] {
		t.Errorf("idom(E) = %v, want D", dom.Idom(b["E"]).Label())
	}
}

func TestDominatorsLoop(t *testing.T) {
	// A -> H; H -> B -> H (back edge); H -> X.
	p := &Program{}
	mk := func(id int) *Block {
		b := &Block{ID: id, PC: id * 10}
		p.Blocks = append(p.Blocks, b)
		return b
	}
	a, h, body, x := mk(0), mk(1), mk(2), mk(3)
	link := func(from, to *Block) {
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	link(a, h)
	link(h, body)
	link(body, h)
	link(h, x)
	p.Entry = a
	dom := ComputeDominators(p)
	if !dom.Dominates(h, body) || !dom.Dominates(h, x) {
		t.Error("loop header must dominate body and exit")
	}
	if dom.Dominates(body, x) {
		t.Error("loop body must not dominate the exit")
	}
	// Walk from body reaches h then a then stops.
	var seen []string
	dom.Walk(body, func(b *Block) bool {
		seen = append(seen, b.Label())
		return true
	})
	if len(seen) != 3 {
		t.Errorf("walk from body visited %v", seen)
	}
}

func TestUnreachableBlocks(t *testing.T) {
	p, b := buildDiamond()
	orphan := &Block{ID: 99, PC: 990}
	p.Blocks = append(p.Blocks, orphan)
	dom := ComputeDominators(p)
	if dom.Dominates(b["A"], orphan) || dom.Dominates(orphan, b["A"]) {
		t.Error("unreachable blocks dominate nothing and are dominated by nothing")
	}
	if dom.Idom(orphan) != nil {
		t.Error("unreachable block has no idom")
	}
}

func TestProgramIndex(t *testing.T) {
	p := &Program{}
	b := &Block{ID: 0}
	p.Blocks = []*Block{b}
	p.Entry = b
	s1 := &Stmt{Op: Const, Def: 0, Val: u256.FromUint64(7), Block: b, Idx: 0}
	s2 := &Stmt{Op: Iszero, Def: 1, Args: []VarID{0}, Block: b, Idx: 1}
	s3 := &Stmt{Op: Add, Def: 2, Args: []VarID{0, 1}, Block: b, Idx: 2}
	b.Stmts = []*Stmt{s1, s2, s3}
	p.BuildIndex()
	if p.DefSite(1) != s2 || p.DefSite(2) != s3 {
		t.Error("DefSite wrong")
	}
	uses := p.Uses(0)
	if len(uses) != 2 {
		t.Fatalf("Uses(0) = %d, want 2", len(uses))
	}
	if p.DefSite(42) != nil {
		t.Error("unknown var should have nil def site")
	}
}

func TestStmtAndProgramString(t *testing.T) {
	s := &Stmt{Op: Const, Def: 3, Val: u256.FromUint64(255)}
	if got := s.String(); !strings.Contains(got, "v3 := CONST 0xff") {
		t.Errorf("Stmt.String() = %q", got)
	}
	s2 := &Stmt{Op: Sstore, Def: NoVar, Args: []VarID{1, 2}}
	if got := s2.String(); got != "SSTORE(v1, v2)" {
		t.Errorf("Stmt.String() = %q", got)
	}
	p, _ := buildDiamond()
	if !strings.Contains(p.String(), "B0@0/0") {
		t.Error("Program.String() missing block labels")
	}
}

func TestOpKindClassification(t *testing.T) {
	for _, k := range []OpKind{Jump, ReturnOp, RevertOp, Invalid, SelfdestructOp, Stop} {
		if !k.IsTerminator() {
			t.Errorf("%s should be a terminator", k)
		}
	}
	for _, k := range []OpKind{Jumpi, Add, Sstore, CallOp} {
		if k.IsTerminator() {
			t.Errorf("%s should not be a terminator", k)
		}
	}
	for _, k := range []OpKind{Add, Phi, Eq, Iszero, Shr} {
		if !k.IsArith() {
			t.Errorf("%s should be arithmetic", k)
		}
	}
	for _, k := range []OpKind{Sload, Mload, Sha3, CallOp, Const} {
		if k.IsArith() {
			t.Errorf("%s should not be arithmetic", k)
		}
	}
}

func TestSelectorBytes(t *testing.T) {
	f := &PublicFunction{Selector: u256.MustHex("0x41c0e1b5")}
	if f.SelectorBytes() != [4]byte{0x41, 0xc0, 0xe1, 0xb5} {
		t.Errorf("SelectorBytes = %x", f.SelectorBytes())
	}
}
