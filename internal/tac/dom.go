package tac

// Dominators holds the immediate-dominator tree of a Program's CFG and
// answers dominance queries. Blocks unreachable from the entry have no idom
// and dominate nothing. Storage is dense by Block.ID — the decompiler assigns
// consecutive ids, so slices replace the former map[*Block] tables on the
// analysis hot path.
type Dominators struct {
	idom  []*Block // by Block.ID; nil marks unreachable
	depth []int32  // by Block.ID; dominator-tree depth, entry = 0
}

// ComputeDominators builds the dominator tree with the iterative
// Cooper-Harper-Kennedy algorithm over a reverse-postorder numbering.
func ComputeDominators(p *Program) *Dominators {
	maxID := -1
	for _, b := range p.Blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
		for _, s := range b.Succs {
			if s.ID > maxID {
				maxID = s.ID
			}
		}
		for _, pr := range b.Preds {
			if pr.ID > maxID {
				maxID = pr.ID
			}
		}
	}
	if p.Entry != nil && p.Entry.ID > maxID {
		maxID = p.Entry.ID
	}
	n := maxID + 1

	// Reverse postorder over reachable blocks.
	order := make([]*Block, 0, len(p.Blocks))
	index := make([]int32, n)
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if p.Entry != nil {
		dfs(p.Entry)
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		index[b.ID] = int32(i)
	}

	idom := make([]*Block, n)
	if p.Entry != nil {
		idom[p.Entry.ID] = p.Entry
	}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a.ID] > index[b.ID] {
				a = idom[a.ID]
			}
			for index[b.ID] > index[a.ID] {
				b = idom[b.ID]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == p.Entry {
				continue
			}
			var newIdom *Block
			for _, pred := range b.Preds {
				if pred.ID >= n || idom[pred.ID] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = pred
				} else {
					newIdom = intersect(pred, newIdom)
				}
			}
			if newIdom != nil && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}

	d := &Dominators{idom: idom, depth: make([]int32, n)}
	// order is reverse postorder, so every reachable block's idom precedes it;
	// one forward pass fills depths without recursion.
	for _, b := range order {
		if b == p.Entry {
			d.depth[b.ID] = 0
			continue
		}
		if ib := idom[b.ID]; ib != nil {
			d.depth[b.ID] = d.depth[ib.ID] + 1
		}
	}
	return d
}

// Idom returns the immediate dominator of b (entry's idom is itself), or nil
// for unreachable blocks.
func (d *Dominators) Idom(b *Block) *Block {
	if b == nil || b.ID < 0 || b.ID >= len(d.idom) {
		return nil
	}
	return d.idom[b.ID]
}

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b *Block) bool {
	if d.Idom(b) == nil || d.Idom(a) == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b.ID]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// Walk visits b and each of its dominators up to the entry.
func (d *Dominators) Walk(b *Block, visit func(*Block) bool) {
	if d.Idom(b) == nil {
		return
	}
	for {
		if !visit(b) {
			return
		}
		next := d.idom[b.ID]
		if next == b {
			return
		}
		b = next
	}
}
