package tac

// Dominators holds the immediate-dominator tree of a Program's CFG and
// answers dominance queries. Blocks unreachable from the entry have no idom
// and dominate nothing.
type Dominators struct {
	idom  map[*Block]*Block
	depth map[*Block]int
}

// ComputeDominators builds the dominator tree with the iterative
// Cooper-Harper-Kennedy algorithm over a reverse-postorder numbering.
func ComputeDominators(p *Program) *Dominators {
	// Reverse postorder over reachable blocks.
	var order []*Block
	index := map[*Block]int{}
	seen := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if p.Entry != nil {
		dfs(p.Entry)
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		index[b] = i
	}

	idom := map[*Block]*Block{}
	if p.Entry != nil {
		idom[p.Entry] = p.Entry
	}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == p.Entry {
				continue
			}
			var newIdom *Block
			for _, pred := range b.Preds {
				if idom[pred] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = pred
				} else {
					newIdom = intersect(pred, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	d := &Dominators{idom: idom, depth: map[*Block]int{}}
	var depthOf func(b *Block) int
	depthOf = func(b *Block) int {
		if b == p.Entry {
			return 0
		}
		if dep, ok := d.depth[b]; ok {
			return dep
		}
		d.depth[b] = depthOf(idom[b]) + 1
		return d.depth[b]
	}
	for b := range idom {
		depthOf(b)
	}
	return d
}

// Idom returns the immediate dominator of b (entry's idom is itself), or nil
// for unreachable blocks.
func (d *Dominators) Idom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b *Block) bool {
	if d.idom[b] == nil || d.idom[a] == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// Walk visits b and each of its dominators up to the entry.
func (d *Dominators) Walk(b *Block, visit func(*Block) bool) {
	if d.idom[b] == nil {
		return
	}
	for {
		if !visit(b) {
			return
		}
		next := d.idom[b]
		if next == b {
			return
		}
		b = next
	}
}
