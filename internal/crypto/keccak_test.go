package crypto

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// Known-answer tests. Vectors are the standard Ethereum Keccak-256 digests
// used throughout Solidity tooling.
func TestKeccak256Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		{"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"},
		// The function-selector preimage from the paper's Victim contract:
		// the documented 4-byte selector of kill() is 0x41c0e1b5; the full
		// digest is pinned as a regression value.
		{"kill()", "41c0e1b5eba5f1ef69db2e30c1ec7d6e0a5f3d39332543a8a99d1165e460a49e"},
	}
	for _, c := range cases {
		got := Keccak256([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Keccak256(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

// A long input exercising multiple sponge blocks. The digest is pinned as a
// regression value (the single-block path is validated by the known vectors
// above; this guards the absorb loop at block boundaries).
func TestKeccak256MultiBlock(t *testing.T) {
	in := bytes.Repeat([]byte("a"), 200)
	got := Keccak256(in)
	const want = "96ea54061def936c4be90b518992fdc6f12f535068a256229aca54267b4d084d"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("Keccak256(200*'a') = %x, want %s", got, want)
	}
	// Exact-rate input (136 bytes) hits the padding-on-empty-buffer edge.
	exact := bytes.Repeat([]byte{0x5c}, 136)
	var h Hasher
	h.Write(exact[:70])
	h.Write(exact[70:])
	if h.Sum256() != Keccak256(exact) {
		t.Error("exact-rate incremental mismatch")
	}
}

// Incremental writes must agree with one-shot hashing regardless of how the
// input is split.
func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h Hasher
		rest := data
		for len(rest) > 0 {
			n := 1 + r.Intn(len(rest))
			h.Write(rest[:n])
			rest = rest[n:]
		}
		return h.Sum256() == Keccak256(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Sum256 must not disturb the running state.
func TestSumIsNonDestructive(t *testing.T) {
	var h Hasher
	h.Write([]byte("hello "))
	first := h.Sum256()
	second := h.Sum256()
	if first != second {
		t.Fatal("two Sum256 calls disagree")
	}
	h.Write([]byte("world"))
	if h.Sum256() != Keccak256([]byte("hello world")) {
		t.Fatal("state corrupted by Sum256")
	}
}

func TestVariadicConcat(t *testing.T) {
	if Keccak256([]byte("ab"), []byte("c")) != Keccak256([]byte("abc")) {
		t.Fatal("variadic Keccak256 should concatenate")
	}
}

func TestReset(t *testing.T) {
	var h Hasher
	h.Write([]byte("junk"))
	h.Reset()
	h.Write([]byte("abc"))
	if h.Sum256() != Keccak256([]byte("abc")) {
		t.Fatal("Reset did not clear state")
	}
}

// Mapping-slot address computation as Solidity performs it:
// keccak256(pad32(key) ++ pad32(slot)). This pins the layout our compiler and
// the DS/DSA analysis rely on.
func TestMappingSlotShape(t *testing.T) {
	var key, slot [32]byte
	key[31] = 0xaa
	slot[31] = 0x02
	direct := Keccak256(key[:], slot[:])
	joined := Keccak256(append(append([]byte{}, key[:]...), slot[:]...))
	if direct != joined {
		t.Fatal("concatenation mismatch")
	}
	if direct == Keccak256(slot[:], key[:]) {
		t.Fatal("order must matter")
	}
}

func BenchmarkKeccak256_32(b *testing.B) {
	data := make([]byte, 32)
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Keccak256(data)
	}
}

func BenchmarkKeccak256_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Keccak256(data)
	}
}
