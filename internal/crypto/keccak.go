// Package crypto implements Keccak-256, the hash function used by the
// Ethereum Virtual Machine (the SHA3 opcode) and by the Solidity storage
// layout for mappings and dynamic arrays.
//
// This is the original Keccak submission (domain-separation byte 0x01), not
// FIPS-202 SHA3 (0x06) — Ethereum froze on pre-standard Keccak. The sponge has
// rate 1088 bits (136 bytes) and capacity 512 bits over the keccak-f[1600]
// permutation.
package crypto

import "math/bits"

// roundConstants are the 24 iota-step constants of keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets gives the rho-step rotation for lane (x, y), flattened as
// x + 5*y.
var rotationOffsets = [25]uint{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// keccakF1600 applies the 24-round keccak-f[1600] permutation in place.
func keccakF1600(a *[25]uint64) {
	var c [5]uint64
	var d [5]uint64
	var b [25]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// Rho and pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], int(rotationOffsets[x+5*y]))
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// Iota.
		a[0] ^= roundConstants[round]
	}
}

const rate = 136 // bytes absorbed per permutation for Keccak-256

// Hasher is an incremental Keccak-256 state. The zero value is ready to use.
type Hasher struct {
	state  [25]uint64
	buf    [rate]byte
	buffed int
}

// Write absorbs p into the sponge. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := rate - h.buffed
		take := len(p)
		if take > space {
			take = space
		}
		copy(h.buf[h.buffed:], p[:take])
		h.buffed += take
		p = p[take:]
		if h.buffed == rate {
			h.absorb()
		}
	}
	return n, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.state[i] ^= le64(h.buf[8*i:])
	}
	keccakF1600(&h.state)
	h.buffed = 0
}

// Sum256 finalizes a copy of the state and returns the 32-byte digest; the
// receiver can keep absorbing afterwards.
func (h *Hasher) Sum256() [32]byte {
	dup := *h
	// Pad: multi-rate padding 0x01 ... 0x80 (original Keccak domain byte).
	for i := dup.buffed; i < rate; i++ {
		dup.buf[i] = 0
	}
	dup.buf[dup.buffed] ^= 0x01
	dup.buf[rate-1] ^= 0x80
	dup.buffed = rate
	dup.absorb()
	var out [32]byte
	for i := 0; i < 4; i++ {
		putLE64(out[8*i:], dup.state[i])
	}
	return out
}

// Reset restores the hasher to its initial state.
func (h *Hasher) Reset() { *h = Hasher{} }

// Keccak256 returns the Keccak-256 digest of the concatenation of the given
// byte slices.
func Keccak256(data ...[]byte) [32]byte {
	var h Hasher
	for _, d := range data {
		h.Write(d)
	}
	return h.Sum256()
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
