// Package sched is the cross-contract sweep scheduler: the throughput layer
// that turns "analyze this pile of contracts" into "analyze each unique
// (bytecode, config) pair exactly once, concurrently, and fan the report out
// to every requester".
//
// The paper's deployment story (Section 7) is whole-chain analysis, and real
// chains are overwhelmingly duplicated — the seeded corpus is 87% clones, the
// paper dedups ~2.5M deployed contracts to ~240K unique ones. Per-analysis
// parallelism buys nothing on this workload (BENCH_core.json's engine_scaling
// curve shows speedup <= 1 at any intra-fixpoint worker count), so the lever
// is parallelism ACROSS contracts plus planned deduplication. The scheduler
// extends core.Cache's singleflight — which coalesces only requests that
// happen to collide mid-computation — into dedup-aware planning: duplicates
// are grouped before any work is dispatched, so a sweep performs exactly one
// analysis per unique work item no matter how the pool interleaves.
//
// Cancellation semantics (the PR 4 contract) are preserved under coalescing
// by running every computation on a detached, reference-counted context: a
// requester that cancels releases its reference and gets its own ctx error,
// but the computation keeps running for the remaining requesters and is only
// cancelled when the last reference is dropped. Cancelled computations are
// never memoized (the cache already guarantees that), and a requester that
// observes a dying computation resubmits under its own context.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ethainter/internal/core"
	"ethainter/internal/crypto"
)

// workKey identifies one unique work item: bytecode keccak-256 plus config
// fingerprint — the same partitioning the cache uses, so scheduler dedup and
// cache memoization never disagree about what "the same analysis" means.
type workKey struct {
	hash [32]byte
	cfg  uint64
}

// item is one in-flight unique computation with its waiters' refcount.
type item struct {
	key  workKey
	code []byte
	cfg  core.Config

	// ctx is the detached computation context: derived from the first
	// requester's context values but not its cancellation (context
	// .WithoutCancel), cancelled by the scheduler only when refs drops to
	// zero — i.e. when every requester has given up.
	ctx    context.Context
	cancel context.CancelFunc
	// refs counts requesters still waiting on this item; guarded by
	// Scheduler.mu.
	refs int

	done chan struct{}
	rep  *core.Report
	err  error
}

// Stats is a snapshot of the scheduler counters.
type Stats struct {
	// Submitted counts every request handed to the scheduler (one per swept
	// contract / batch item that decoded successfully).
	Submitted uint64 `json:"submitted"`
	// CacheHits counts requests served synchronously from the cache fast
	// path, without touching the pool.
	CacheHits uint64 `json:"cache_hits"`
	// Coalesced counts requests that attached to an existing unique work
	// item instead of creating one — planned dedup within a sweep plus
	// accidental cross-request collisions.
	Coalesced uint64 `json:"coalesced"`
	// Unique counts unique work items created (each is analyzed exactly
	// once per sweep; the cache may still satisfy it without computing).
	Unique uint64 `json:"unique_work"`
	// InFlight is the gauge of unique items currently created-but-unfinished.
	InFlight int64 `json:"in_flight"`
	// Workers is the pool size.
	Workers int `json:"workers"`
}

// Scheduler runs unique analyses over a bounded worker pool in front of a
// shared core.Cache. One Scheduler is meant to live as long as its cache —
// the server shares one across all /batch requests so identical bytecode in
// concurrent batches coalesces across request boundaries.
type Scheduler struct {
	cache   *core.Cache
	workers int
	queue   chan *item

	mu       sync.Mutex
	inflight map[workKey]*item

	closeOnce sync.Once

	submitted atomic.Uint64
	cacheHits atomic.Uint64
	coalesced atomic.Uint64
	unique    atomic.Uint64
	gauge     atomic.Int64

	// analyze computes one unique item; tests override it to block and
	// observe computations deterministically. Defaults to the cache.
	analyze func(ctx context.Context, hash [32]byte, code []byte, cfg core.Config) (*core.Report, error)
}

// New returns a scheduler over the given cache with a pool of the given
// size; workers <= 0 selects one worker per available CPU (cross-contract
// analyses are independent and CPU-bound, so one per core is the saturation
// point). The pool goroutines start immediately and run until Close.
func New(cache *core.Cache, workers int) *Scheduler {
	if cache == nil {
		cache = core.NewCache(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		cache:    cache,
		workers:  workers,
		queue:    make(chan *item, 64),
		inflight: map[workKey]*item{},
	}
	s.analyze = s.cache.AnalyzeHashedContext
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Cache returns the cache the scheduler computes through.
func (s *Scheduler) Cache() *core.Cache { return s.cache }

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Close stops the pool once queued items drain. Items submitted after Close
// panic (send on closed channel); a Scheduler is process-lifetime in the
// server and sweep-lifetime in the bench, so there is no graceful-reject
// path — callers own the ordering.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() { close(s.queue) })
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted: s.submitted.Load(),
		CacheHits: s.cacheHits.Load(),
		Coalesced: s.coalesced.Load(),
		Unique:    s.unique.Load(),
		InFlight:  s.gauge.Load(),
		Workers:   s.workers,
	}
}

// Do analyzes one bytecode under cfg through the scheduler: served from the
// cache when memoized, attached to an in-flight computation when one exists
// (counting as coalesced), otherwise dispatched to the pool as a new unique
// work item. Blocks until the report is available or ctx is done. A caller
// whose ctx expires gets ctx.Err() immediately; the computation it may have
// been waiting on continues for other requesters.
func (s *Scheduler) Do(ctx context.Context, code []byte, cfg core.Config) (*core.Report, error) {
	return s.do(ctx, crypto.Keccak256(code), code, cfg)
}

func (s *Scheduler) do(ctx context.Context, hash [32]byte, code []byte, cfg core.Config) (*core.Report, error) {
	s.submitted.Add(1)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fast path: memoized (positively or negatively) in the cache. When
		// persistent tiers are attached, Lookup also probes them — a file
		// read for the disk tier, a bounded-timeout peer probe for the
		// remote tier, both on the requester's own goroutine — so a
		// warm-disk or peer-filled sweep serves every request right here
		// without ever occupying a pool worker.
		if rep, err, ok := s.cache.Lookup(hash, cfg); ok {
			s.cacheHits.Add(1)
			return rep, err
		}

		key := workKey{hash: hash, cfg: cfg.Fingerprint()}
		s.mu.Lock()
		it, ok := s.inflight[key]
		if ok {
			it.refs++
			s.mu.Unlock()
			s.coalesced.Add(1)
		} else {
			it = s.newItem(ctx, key, code, cfg)
			s.mu.Unlock()
			s.unique.Add(1)
			select {
			case s.queue <- it:
			case <-ctx.Done():
				// The item was registered but never enqueued: no worker will
				// ever finish it, so the creator must. Unregister it and
				// finish it with the cancellation; any requester that
				// attached meanwhile observes a cancelled item and retries
				// under its own (live) context.
				s.mu.Lock()
				delete(s.inflight, key)
				s.mu.Unlock()
				s.gauge.Add(-1)
				it.err = ctx.Err()
				close(it.done)
				it.cancel()
				return nil, ctx.Err()
			}
		}

		rep, err, again := s.wait(ctx, it)
		if !again {
			return rep, err
		}
		// The item died of cancellation (every earlier requester gave up
		// before we attached, or the computation observed a stale cancel)
		// while our own ctx is still live: its failure says nothing about
		// the bytecode. Resubmit under our own context.
	}
}

// newItem creates and registers a unique work item. Callers hold s.mu. The
// computation context keeps the first requester's values (tracing, etc.) but
// detaches from its cancellation: only the scheduler cancels it, and only
// when the last requester releases.
func (s *Scheduler) newItem(ctx context.Context, key workKey, code []byte, cfg core.Config) *item {
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	it := &item{
		key:    key,
		code:   code,
		cfg:    cfg,
		ctx:    cctx,
		cancel: cancel,
		refs:   1,
		done:   make(chan struct{}),
	}
	s.inflight[key] = it
	s.gauge.Add(1)
	return it
}

// wait blocks until the item finishes or ctx is done. The third result asks
// the caller to retry: the computation was cancelled (all requesters had
// released) while this caller's ctx is still live.
func (s *Scheduler) wait(ctx context.Context, it *item) (*core.Report, error, bool) {
	select {
	case <-it.done:
		if core.IsCancellation(it.err) && ctx.Err() == nil {
			return nil, nil, true
		}
		return it.rep, it.err, false
	case <-ctx.Done():
		s.release(it)
		return nil, ctx.Err(), false
	}
}

// release drops one requester's reference; the last one out cancels the
// detached computation — nobody wants the result anymore, so burning more
// CPU on it would only delay live work.
func (s *Scheduler) release(it *item) {
	s.mu.Lock()
	it.refs--
	last := it.refs == 0
	s.mu.Unlock()
	if last {
		it.cancel()
	}
}

// worker runs queued unique items to completion. An item whose detached
// context is already dead (every requester released while it sat queued) is
// short-circuited without touching the cache — the PR 4 batch semantics,
// lifted to the pool.
func (s *Scheduler) worker() {
	for it := range s.queue {
		if err := it.ctx.Err(); err != nil {
			it.err = err
		} else {
			it.rep, it.err = s.analyze(it.ctx, it.key.hash, it.code, it.cfg)
		}
		s.mu.Lock()
		delete(s.inflight, it.key)
		s.mu.Unlock()
		s.gauge.Add(-1)
		close(it.done)
		// The computation is finished; release the detached context's timer
		// and goroutine resources. Waiters read it.rep/it.err, never it.ctx.
		it.cancel()
	}
}

// Result is one per-input outcome of a Sweep: exactly one of Report and Err
// is meaningful.
type Result struct {
	Report *core.Report
	Err    error
}

// Sweep analyzes a corpus through the scheduler with planned deduplication:
// inputs are grouped by (bytecode hash, config fingerprint) up front, one
// request per unique group is submitted, and each group's result is fanned
// out to every index holding that bytecode. The each callback, when non-nil,
// is invoked once per input index as its result lands (concurrently; the
// callback must be safe for concurrent use — the bench uses it for progress
// lines). All requesters share ctx: a sweep-wide deadline short-circuits
// pending groups with ctx.Err() per item.
func (s *Scheduler) Sweep(ctx context.Context, codes [][]byte, cfg core.Config, each func(int, Result)) []Result {
	out := make([]Result, len(codes))

	// Dedup plan: hash every input once, group indices by work key.
	order := make([]workKey, 0, len(codes))
	groups := make(map[workKey][]int, len(codes))
	fp := cfg.Fingerprint()
	for i, code := range codes {
		key := workKey{hash: crypto.Keccak256(code), cfg: fp}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}

	var wg sync.WaitGroup
	for _, key := range order {
		idxs := groups[key]
		// Planned dedup: the duplicates never reach the pool at all.
		s.submitted.Add(uint64(len(idxs) - 1))
		s.coalesced.Add(uint64(len(idxs) - 1))
		wg.Add(1)
		go func(key workKey, idxs []int) {
			defer wg.Done()
			rep, err := s.do(ctx, key.hash, codes[idxs[0]], cfg)
			for _, i := range idxs {
				out[i] = Result{Report: rep, Err: err}
				if each != nil {
					each(i, out[i])
				}
			}
		}(key, idxs)
	}
	wg.Wait()
	return out
}
