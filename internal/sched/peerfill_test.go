package sched

import (
	"context"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// peerFillServer exposes src's cache entries the way a replica's /cache
// endpoint does, so a RemoteTier pointed at it exercises the real protocol
// shape (route, hex key encoding, 404-as-miss) without booting a full server.
func peerFillServer(t *testing.T, src *core.Cache) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/{hash}/{fp}", func(w http.ResponseWriter, r *http.Request) {
		hb, err := hex.DecodeString(r.PathValue("hash"))
		if err != nil || len(hb) != 32 {
			http.Error(w, "bad hash", http.StatusBadRequest)
			return
		}
		fp, err := strconv.ParseUint(r.PathValue("fp"), 16, 64)
		if err != nil {
			http.Error(w, "bad fingerprint", http.StatusBadRequest)
			return
		}
		data, ok := src.EntryBytes([32]byte(hb), fp)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Write(data)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestPeerFillSweepServesWithoutWorkers: the peer-filled analogue of the
// warm-disk sweep test. A cold replica sweeps a corpus another replica has
// already analyzed, with no local disk tier — only a RemoteTier pointed at
// the warm replica. Every group must resolve on the scheduler's Lookup fast
// path: zero unique items reach the pool, zero analyses and decompilations
// run locally, every unique group is a peer hit, and the peer-served
// reports equal the source replica's.
func TestPeerFillSweepServesWithoutWorkers(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(30, 11))
	cfg := core.DefaultConfig()
	codes := make([][]byte, len(contracts))
	unique := map[string]bool{}
	for i, c := range contracts {
		codes[i] = c.Runtime
		unique[string(c.Runtime)] = true
	}

	// Warm replica: analyze the corpus into a memory-only cache and serve it.
	srcCache := core.NewCacheSharded(0, 8)
	src := New(srcCache, 4)
	srcResults := src.Sweep(context.Background(), codes, cfg, nil)
	src.Close()
	peer := peerFillServer(t, srcCache)

	// Cold replica: fresh cache whose only lower tier is the peer.
	coldCache := core.NewCacheSharded(0, 8)
	remote := core.NewRemoteTier([]string{peer.URL}, 0)
	defer remote.Close()
	coldCache.SetRemoteTier(remote)
	cold := New(coldCache, 4)
	defer cold.Close()
	coldResults := cold.Sweep(context.Background(), codes, cfg, nil)

	for i := range codes {
		if (srcResults[i].Err == nil) != (coldResults[i].Err == nil) {
			t.Fatalf("contract %d: source err %v, peer-filled err %v", i, srcResults[i].Err, coldResults[i].Err)
		}
		if srcResults[i].Err == nil &&
			!reflect.DeepEqual(stripTimings(srcResults[i].Report), stripTimings(coldResults[i].Report)) {
			t.Fatalf("contract %d: peer-filled report diverges from the source replica's", i)
		}
	}

	st := cold.Stats()
	if st.Unique != 0 {
		t.Errorf("peer-filled sweep dispatched %d unique items to the pool, want 0", st.Unique)
	}
	if st.CacheHits != uint64(len(unique)) {
		t.Errorf("fast-path hits = %d, want one per unique group (%d)", st.CacheHits, len(unique))
	}
	cs := coldCache.Stats()
	if cs.Analyses != 0 || cs.Decompiles != 0 {
		t.Errorf("peer-filled sweep ran %d analyses / %d decompiles, want 0/0", cs.Analyses, cs.Decompiles)
	}
	if cs.PeerHits != uint64(len(unique)) || cs.Misses != 0 {
		t.Errorf("PeerHits = %d, Misses = %d, want %d peer hits and no misses",
			cs.PeerHits, cs.Misses, len(unique))
	}
	if cs.PeerErrors != 0 {
		t.Errorf("PeerErrors = %d, want 0 against a healthy peer", cs.PeerErrors)
	}
	if cs.PeerFillBytes == 0 {
		t.Error("PeerFillBytes = 0 despite peer-filling the whole corpus")
	}
}
