package sched

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/minisol"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// stripTimings zeroes the wall-clock stage breakdown for deep comparison.
func stripTimings(r *core.Report) *core.Report {
	if r == nil {
		return nil
	}
	c := *r
	c.Stats.Timings = core.StageTimings{}
	return &c
}

// TestSweepDedupExactlyOnce is the scheduler's core contract: a sweep over a
// duplicated corpus performs exactly one analysis per unique bytecode, fans
// the result out to every duplicate index, and the fanned-out reports equal
// fresh analyses.
func TestSweepDedupExactlyOnce(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(60, 9))
	cfg := core.DefaultConfig()
	codes := make([][]byte, len(contracts))
	unique := map[string]bool{}
	for i, c := range contracts {
		codes[i] = c.Runtime
		unique[string(c.Runtime)] = true
	}
	if len(unique) == len(codes) {
		t.Fatal("corpus profile lost its duplication — the test needs clones")
	}

	s := New(core.NewCacheSharded(0, 8), 4)
	defer s.Close()
	var delivered atomic.Int64
	results := s.Sweep(context.Background(), codes, cfg, func(int, Result) { delivered.Add(1) })

	for i, res := range results {
		fresh, freshErr := core.AnalyzeBytecode(codes[i], cfg)
		if (freshErr == nil) != (res.Err == nil) {
			t.Fatalf("contract %d: fresh err %v, sweep err %v", i, freshErr, res.Err)
		}
		if freshErr == nil && !reflect.DeepEqual(stripTimings(fresh), stripTimings(res.Report)) {
			t.Fatalf("contract %d: sweep report diverges from fresh", i)
		}
	}
	if got := delivered.Load(); got != int64(len(codes)) {
		t.Errorf("each callback fired %d times, want %d", got, len(codes))
	}

	st := s.Stats()
	if st.Unique != uint64(len(unique)) {
		t.Errorf("unique work = %d, want %d", st.Unique, len(unique))
	}
	if st.Coalesced != uint64(len(codes)-len(unique)) {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, len(codes)-len(unique))
	}
	if st.Submitted != uint64(len(codes)) {
		t.Errorf("submitted = %d, want %d", st.Submitted, len(codes))
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after sweep drained", st.InFlight)
	}
	if cs := s.Cache().Stats(); cs.Misses != uint64(len(unique)) {
		t.Errorf("cache misses = %d, want exactly one per unique bytecode (%d)", cs.Misses, len(unique))
	}

	// A second (warm) sweep is served entirely by the cache fast path: no new
	// unique work, one hit per unique group.
	s.Sweep(context.Background(), codes, cfg, nil)
	st2 := s.Stats()
	if st2.Unique != st.Unique {
		t.Errorf("warm sweep created %d new unique items", st2.Unique-st.Unique)
	}
	if st2.CacheHits != st.CacheHits+uint64(len(unique)) {
		t.Errorf("warm sweep fast-path hits = %d, want %d more than %d",
			st2.CacheHits, len(unique), st.CacheHits)
	}
}

// TestCoalescedCancellation is the governance test for coalescing semantics:
// requester A cancels mid-flight while requester B waits on the same
// (hash, config) work item. B must still get the report, and the detached
// computation context must NOT be cancelled by A's departure — only the last
// requester out cancels it.
func TestCoalescedCancellation(t *testing.T) {
	s := New(core.NewCache(0), 2)
	defer s.Close()

	started := make(chan context.Context, 1)
	release := make(chan struct{})
	want := &core.Report{PublicFunctions: 42}
	s.analyze = func(ctx context.Context, _ [32]byte, _ []byte, _ core.Config) (*core.Report, error) {
		started <- ctx
		select {
		case <-release:
			return want, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	code := []byte{0x60, 0x00}
	cfg := core.DefaultConfig()
	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := s.Do(ctxA, code, cfg)
		aErr <- err
	}()
	computeCtx := <-started

	bDone := make(chan Result, 1)
	go func() {
		rep, err := s.Do(context.Background(), code, cfg)
		bDone <- Result{Report: rep, Err: err}
	}()
	waitFor(t, "B to coalesce onto A's work item", func() bool { return s.Stats().Coalesced == 1 })

	cancelA()
	if err := <-aErr; err != context.Canceled {
		t.Fatalf("A's error = %v, want context.Canceled immediately", err)
	}
	// B still holds a reference: the computation must keep running.
	select {
	case <-computeCtx.Done():
		t.Fatal("computation context cancelled by A's departure while B waits")
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	res := <-bDone
	if res.Err != nil || res.Report != want {
		t.Fatalf("B's result = (%v, %v), want the computed report", res.Report, res.Err)
	}
	if st := s.Stats(); st.Unique != 1 || st.Coalesced != 1 || st.InFlight != 0 {
		t.Errorf("stats = %+v, want 1 unique / 1 coalesced / 0 in flight", st)
	}
}

// TestAllRequestersCancelThenRecompute pins the other half of the refcount
// contract: when EVERY requester releases, the detached computation is
// cancelled (no orphaned work), and a later requester recomputes from
// scratch and succeeds — the dead computation's cancellation is not
// memoized anywhere.
func TestAllRequestersCancelThenRecompute(t *testing.T) {
	s := New(core.NewCache(0), 1)
	defer s.Close()

	started := make(chan context.Context, 1)
	want := &core.Report{PublicFunctions: 7}
	var calls atomic.Int32
	s.analyze = func(ctx context.Context, _ [32]byte, _ []byte, _ core.Config) (*core.Report, error) {
		if calls.Add(1) == 1 {
			started <- ctx
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return want, nil
	}

	code := []byte{0x60, 0x01}
	cfg := core.DefaultConfig()
	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := s.Do(ctxA, code, cfg)
		aErr <- err
	}()
	computeCtx := <-started

	cancelA()
	if err := <-aErr; err != context.Canceled {
		t.Fatalf("A's error = %v, want context.Canceled", err)
	}
	select {
	case <-computeCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("last requester released but the computation was not cancelled")
	}

	rep, err := s.Do(context.Background(), code, cfg)
	if err != nil || rep != want {
		t.Fatalf("post-cancellation Do = (%v, %v), want a fresh successful report", rep, err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("analyze ran %d times, want 2 (cancelled + recomputed)", got)
	}
}

// TestCancellationNotMemoizedEndToEnd runs the real pipeline: a request that
// dies on its own deadline must not poison the (hash, config) key — the next
// requester with a live context gets a real report.
func TestCancellationNotMemoizedEndToEnd(t *testing.T) {
	s := New(core.NewCacheSharded(0, 4), 2)
	defer s.Close()
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := core.DefaultConfig()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, code, cfg); !core.IsCancellation(err) {
		t.Fatalf("pre-cancelled Do error = %v, want a cancellation", err)
	}

	rep, err := s.Do(context.Background(), code, cfg)
	if err != nil {
		t.Fatalf("follow-up Do failed: %v", err)
	}
	fresh, _ := core.AnalyzeBytecode(code, cfg)
	if !reflect.DeepEqual(stripTimings(fresh), stripTimings(rep)) {
		t.Error("follow-up report diverges from fresh analysis")
	}
}

// TestDoFastPathServesFromCache pins that memoized work never occupies a
// pool worker: the second Do is a synchronous cache hit.
func TestDoFastPathServesFromCache(t *testing.T) {
	s := New(core.NewCache(0), 1)
	defer s.Close()
	code := minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime
	cfg := core.DefaultConfig()

	first, err := s.Do(context.Background(), code, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Do(context.Background(), code, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("cached Do returned a different report pointer than the computed one")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.Unique != 1 {
		t.Errorf("stats = %+v, want 1 fast-path hit / 1 unique", st)
	}
}

// TestSweepWarmDiskServesWithoutWorkers: with a warm disk tier underneath the
// cache, a fresh process's sweep resolves every group on the Lookup fast
// path — zero unique work items ever reach the pool, zero analyses and zero
// decompilations run — and the disk-served reports equal the cold run's.
func TestSweepWarmDiskServesWithoutWorkers(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(30, 11))
	cfg := core.DefaultConfig()
	codes := make([][]byte, len(contracts))
	unique := map[string]bool{}
	for i, c := range contracts {
		codes[i] = c.Runtime
		unique[string(c.Runtime)] = true
	}
	dir := t.TempDir()

	// Cold process: analyze the corpus into the tier and flush it.
	tier, err := core.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldCache := core.NewCacheSharded(0, 8)
	coldCache.SetDiskTier(tier)
	cold := New(coldCache, 4)
	coldResults := cold.Sweep(context.Background(), codes, cfg, nil)
	cold.Close()
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm process: fresh cache, fresh scheduler, same directory.
	tier2, err := core.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	warmCache := core.NewCacheSharded(0, 8)
	warmCache.SetDiskTier(tier2)
	warm := New(warmCache, 4)
	defer warm.Close()
	warmResults := warm.Sweep(context.Background(), codes, cfg, nil)

	for i := range codes {
		if (coldResults[i].Err == nil) != (warmResults[i].Err == nil) {
			t.Fatalf("contract %d: cold err %v, warm err %v", i, coldResults[i].Err, warmResults[i].Err)
		}
		if coldResults[i].Err == nil &&
			!reflect.DeepEqual(stripTimings(coldResults[i].Report), stripTimings(warmResults[i].Report)) {
			t.Fatalf("contract %d: warm report diverges from cold", i)
		}
	}

	st := warm.Stats()
	if st.Unique != 0 {
		t.Errorf("warm sweep dispatched %d unique items to the pool, want 0", st.Unique)
	}
	if st.CacheHits != uint64(len(unique)) {
		t.Errorf("warm fast-path hits = %d, want one per unique group (%d)", st.CacheHits, len(unique))
	}
	cs := warmCache.Stats()
	if cs.Analyses != 0 || cs.Decompiles != 0 {
		t.Errorf("warm sweep ran %d analyses / %d decompiles, want 0/0", cs.Analyses, cs.Decompiles)
	}
	if cs.DiskHits != uint64(len(unique)) || cs.Misses != 0 {
		t.Errorf("warm sweep: DiskHits = %d, Misses = %d, want %d disk hits and no misses",
			cs.DiskHits, cs.Misses, len(unique))
	}
}
