package u256

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

func wrap(b *big.Int) *big.Int {
	m := new(big.Int).Mod(b, two256)
	if m.Sign() < 0 {
		m.Add(m, two256)
	}
	return m
}

// randU256 builds interesting random values: full-width, sparse, and small.
func randU256(r *rand.Rand) U256 {
	switch r.Intn(4) {
	case 0:
		return FromUint64(r.Uint64())
	case 1:
		return U256{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	case 2:
		return FromUint64(uint64(r.Intn(5))) // 0..4: boundary values
	default:
		x := U256{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
		return x.Shl(uint(r.Intn(256))) // values with low zero bits
	}
}

// U256Value wraps U256 for testing/quick so we can attach a Generate method
// producing diverse values (boundary, sparse, full-width).
type U256Value struct{ V U256 }

// Generate implements quick.Generator.
func (U256Value) Generate(r *rand.Rand, _ int) U256Value { return U256Value{randU256(r)} }

func checkBinary(t *testing.T, name string, got func(x, y U256) U256, want func(x, y *big.Int) *big.Int) {
	t.Helper()
	f := func(a, b U256Value) bool {
		g := got(a.V, b.V)
		w := FromBig(wrap(want(a.V.ToBig(), b.V.ToBig())))
		if g != w {
			t.Logf("%s(%s, %s) = %s, want %s", name, a.V, b.V, g, w)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestAddSubMulAgainstBig(t *testing.T) {
	checkBinary(t, "Add", U256.Add, func(x, y *big.Int) *big.Int { return new(big.Int).Add(x, y) })
	checkBinary(t, "Sub", U256.Sub, func(x, y *big.Int) *big.Int { return new(big.Int).Sub(x, y) })
	checkBinary(t, "Mul", U256.Mul, func(x, y *big.Int) *big.Int { return new(big.Int).Mul(x, y) })
	checkBinary(t, "And", U256.And, func(x, y *big.Int) *big.Int { return new(big.Int).And(x, y) })
	checkBinary(t, "Or", U256.Or, func(x, y *big.Int) *big.Int { return new(big.Int).Or(x, y) })
	checkBinary(t, "Xor", U256.Xor, func(x, y *big.Int) *big.Int { return new(big.Int).Xor(x, y) })
}

func TestDivModAgainstBig(t *testing.T) {
	checkBinary(t, "Div", U256.Div, func(x, y *big.Int) *big.Int {
		if y.Sign() == 0 {
			return big.NewInt(0)
		}
		return new(big.Int).Div(x, y)
	})
	checkBinary(t, "Mod", U256.Mod, func(x, y *big.Int) *big.Int {
		if y.Sign() == 0 {
			return big.NewInt(0)
		}
		return new(big.Int).Mod(x, y)
	})
}

func toSigned(b *big.Int) *big.Int {
	s := new(big.Int).Set(b)
	if s.Bit(255) == 1 {
		s.Sub(s, two256)
	}
	return s
}

func TestSignedDivModAgainstBig(t *testing.T) {
	checkBinary(t, "SDiv", U256.SDiv, func(x, y *big.Int) *big.Int {
		sy := toSigned(y)
		if sy.Sign() == 0 {
			return big.NewInt(0)
		}
		return new(big.Int).Quo(toSigned(x), sy)
	})
	checkBinary(t, "SMod", U256.SMod, func(x, y *big.Int) *big.Int {
		sy := toSigned(y)
		if sy.Sign() == 0 {
			return big.NewInt(0)
		}
		return new(big.Int).Rem(toSigned(x), sy)
	})
}

func TestComparisonsAgainstBig(t *testing.T) {
	f := func(a, b U256Value) bool {
		x, y := a.V, b.V
		bx, by := x.ToBig(), y.ToBig()
		if x.Lt(y) != (bx.Cmp(by) < 0) || x.Gt(y) != (bx.Cmp(by) > 0) || x.Eq(y) != (bx.Cmp(by) == 0) {
			return false
		}
		sx, sy := toSigned(bx), toSigned(by)
		return x.Slt(y) == (sx.Cmp(sy) < 0) && x.Sgt(y) == (sx.Cmp(sy) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShiftsAgainstBig(t *testing.T) {
	f := func(a U256Value, nRaw uint16) bool {
		x := a.V
		n := uint(nRaw % 300)
		wantShl := FromBig(wrap(new(big.Int).Lsh(x.ToBig(), n)))
		wantShr := FromBig(new(big.Int).Rsh(x.ToBig(), n))
		if x.Shl(n) != wantShl || x.Shr(n) != wantShr {
			return false
		}
		sar := x.Sar(n)
		signed := toSigned(x.ToBig())
		wantSar := FromBig(wrap(new(big.Int).Rsh(signed, n)))
		return sar == wantSar
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExpAgainstBig(t *testing.T) {
	f := func(a U256Value, eRaw uint16) bool {
		e := FromUint64(uint64(eRaw % 40))
		want := FromBig(new(big.Int).Exp(a.V.ToBig(), e.ToBig(), two256))
		return a.V.Exp(e) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// A full-width exponent must terminate and agree with big.Int.
	x := MustHex("0x3")
	e := MustHex("0x10000000000000001")
	want := FromBig(new(big.Int).Exp(x.ToBig(), e.ToBig(), two256))
	if got := x.Exp(e); got != want {
		t.Errorf("Exp wide: got %s want %s", got, want)
	}
}

func TestAddModMulMod(t *testing.T) {
	f := func(a, b, m U256Value) bool {
		if m.V.IsZero() {
			return a.V.AddMod(b.V, m.V).IsZero() && a.V.MulMod(b.V, m.V).IsZero()
		}
		wantAdd := FromBig(new(big.Int).Mod(new(big.Int).Add(a.V.ToBig(), b.V.ToBig()), m.V.ToBig()))
		wantMul := FromBig(new(big.Int).Mod(new(big.Int).Mul(a.V.ToBig(), b.V.ToBig()), m.V.ToBig()))
		return a.V.AddMod(b.V, m.V) == wantAdd && a.V.MulMod(b.V, m.V) == wantMul
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a U256Value) bool {
		return FromBytes32(a.V.Bytes32()) == a.V && FromBig(a.V.ToBig()) == a.V
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFromBytesShortAndLong(t *testing.T) {
	if got := FromBytes([]byte{0x01, 0x02}); got != FromUint64(0x0102) {
		t.Errorf("short FromBytes: got %s", got)
	}
	long := make([]byte, 40)
	long[39] = 7
	if got := FromBytes(long); got != FromUint64(7) {
		t.Errorf("long FromBytes: got %s", got)
	}
}

func TestHexParsing(t *testing.T) {
	cases := map[string]U256{
		"0x0":    Zero,
		"0xff":   FromUint64(255),
		"1234":   FromUint64(0x1234),
		"0xdead": FromUint64(0xdead),
	}
	for in, want := range cases {
		got, err := FromHex(in)
		if err != nil {
			t.Fatalf("FromHex(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("FromHex(%q) = %s, want %s", in, got, want)
		}
	}
	for _, bad := range []string{"", "0x", "0xzz", "0x" + string(make([]byte, 100))} {
		if _, err := FromHex(bad); err == nil {
			t.Errorf("FromHex(%q): expected error", bad)
		}
	}
}

func TestByteOpcode(t *testing.T) {
	x := MustHex("0x0102030405060708091011121314151617181920212223242526272829303132")
	if got := x.Byte(FromUint64(0)); got != FromUint64(1) {
		t.Errorf("Byte(0) = %s", got)
	}
	if got := x.Byte(FromUint64(31)); got != FromUint64(0x32) {
		t.Errorf("Byte(31) = %s", got)
	}
	if got := x.Byte(FromUint64(32)); !got.IsZero() {
		t.Errorf("Byte(32) = %s, want 0", got)
	}
	if got := x.Byte(Max); !got.IsZero() {
		t.Errorf("Byte(max) = %s, want 0", got)
	}
}

func TestSignExtend(t *testing.T) {
	// 0xff sign-extended from byte 0 is -1.
	if got := FromUint64(0xff).SignExtend(FromUint64(0)); got != Max {
		t.Errorf("SignExtend(0xff, 0) = %s", got)
	}
	// 0x7f stays positive.
	if got := FromUint64(0x7f).SignExtend(FromUint64(0)); got != FromUint64(0x7f) {
		t.Errorf("SignExtend(0x7f, 0) = %s", got)
	}
	// Extension also clears high garbage when the sign bit is 0.
	x := MustHex("0xff00000000000000000000000000000000000000000000000000000000000012")
	if got := x.SignExtend(FromUint64(0)); got != FromUint64(0x12) {
		t.Errorf("SignExtend clears high bits: got %s", got)
	}
	// k >= 31 is identity.
	if got := x.SignExtend(FromUint64(31)); got != x {
		t.Errorf("SignExtend(31) should be identity")
	}
}

func TestStringForms(t *testing.T) {
	if Zero.String() != "0x0" {
		t.Errorf("Zero.String() = %q", Zero.String())
	}
	if FromUint64(255).String() != "0xff" {
		t.Errorf("255 = %q", FromUint64(255).String())
	}
	if len(Max.Hex64()) != 66 {
		t.Errorf("Hex64 width: %q", Max.Hex64())
	}
}

func TestBitLen(t *testing.T) {
	if Zero.BitLen() != 0 || One.BitLen() != 1 || Max.BitLen() != 256 {
		t.Errorf("BitLen basics wrong: %d %d %d", Zero.BitLen(), One.BitLen(), Max.BitLen())
	}
	if got := One.Shl(200).BitLen(); got != 201 {
		t.Errorf("BitLen(1<<200) = %d", got)
	}
}

func BenchmarkMul(b *testing.B) {
	x := MustHex("0xdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef")
	y := MustHex("0x123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkAdd(b *testing.B) {
	x, y := Max, One
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
	_ = x
}
