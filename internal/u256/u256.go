// Package u256 implements 256-bit unsigned integer arithmetic with the
// wrap-around (mod 2^256) semantics of the Ethereum Virtual Machine.
//
// Values are immutable: every operation returns a new U256. The representation
// is four 64-bit limbs in little-endian limb order (limb 0 holds the least
// significant 64 bits). The package is self-contained apart from math/bits and
// math/big (the latter only for conversions and for EXP/division fallbacks
// kept simple on purpose — this is an analysis substrate, not a node).
package u256

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"math/bits"
	"strings"
)

// U256 is a 256-bit unsigned integer. The zero value is the number 0.
type U256 [4]uint64

// Common constants.
var (
	Zero = U256{}
	One  = U256{1, 0, 0, 0}
	Max  = U256{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
)

// FromUint64 returns v as a U256.
func FromUint64(v uint64) U256 { return U256{v, 0, 0, 0} }

// FromBig converts a big.Int (interpreted mod 2^256; negative values are
// two's-complement wrapped) to a U256.
func FromBig(b *big.Int) U256 {
	m := new(big.Int).Set(b)
	mod := new(big.Int).Lsh(big.NewInt(1), 256)
	m.Mod(m, mod)
	if m.Sign() < 0 {
		m.Add(m, mod)
	}
	var x U256
	words := m.Bits()
	// big.Word is 64-bit on all platforms we target.
	for i := 0; i < len(words) && i < 4; i++ {
		x[i] = uint64(words[i])
	}
	return x
}

// ToBig converts x to a non-negative big.Int.
func (x U256) ToBig() *big.Int {
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(x[i]))
	}
	return b
}

// FromBytes interprets b as a big-endian unsigned integer. Inputs longer than
// 32 bytes keep only the low-order 32 bytes (EVM semantics); shorter inputs
// are zero-extended on the left.
func FromBytes(b []byte) U256 {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var buf [32]byte
	copy(buf[32-len(b):], b)
	return FromBytes32(buf)
}

// FromBytes32 interprets the 32-byte array as a big-endian unsigned integer.
func FromBytes32(b [32]byte) U256 {
	var x U256
	for limb := 0; limb < 4; limb++ {
		off := 24 - 8*limb
		x[limb] = uint64(b[off])<<56 | uint64(b[off+1])<<48 | uint64(b[off+2])<<40 |
			uint64(b[off+3])<<32 | uint64(b[off+4])<<24 | uint64(b[off+5])<<16 |
			uint64(b[off+6])<<8 | uint64(b[off+7])
	}
	return x
}

// Bytes32 returns the big-endian 32-byte representation of x.
func (x U256) Bytes32() [32]byte {
	var b [32]byte
	for limb := 0; limb < 4; limb++ {
		off := 24 - 8*limb
		v := x[limb]
		b[off] = byte(v >> 56)
		b[off+1] = byte(v >> 48)
		b[off+2] = byte(v >> 40)
		b[off+3] = byte(v >> 32)
		b[off+4] = byte(v >> 24)
		b[off+5] = byte(v >> 16)
		b[off+6] = byte(v >> 8)
		b[off+7] = byte(v)
	}
	return b
}

// FromHex parses a hex string with optional 0x prefix. It returns an error on
// empty or malformed input or input longer than 64 hex digits.
func FromHex(s string) (U256, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if s == "" {
		return Zero, fmt.Errorf("u256: empty hex literal")
	}
	if len(s) > 64 {
		return Zero, fmt.Errorf("u256: hex literal %q longer than 256 bits", s)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("u256: bad hex literal: %w", err)
	}
	return FromBytes(raw), nil
}

// MustHex is FromHex that panics on malformed input; for tests and tables.
func MustHex(s string) U256 {
	x, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return x
}

// String renders x as minimal 0x-prefixed hex.
func (x U256) String() string {
	if x.IsZero() {
		return "0x0"
	}
	b := x.Bytes32()
	s := hex.EncodeToString(b[:])
	return "0x" + strings.TrimLeft(s, "0")
}

// Hex64 renders x as full-width 0x-prefixed 64-digit hex.
func (x U256) Hex64() string {
	b := x.Bytes32()
	return "0x" + hex.EncodeToString(b[:])
}

// IsZero reports whether x == 0.
func (x U256) IsZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

// Eq reports whether x == y.
func (x U256) Eq(y U256) bool { return x == y }

// IsUint64 reports whether x fits in a uint64.
func (x U256) IsUint64() bool { return x[1]|x[2]|x[3] == 0 }

// Uint64 returns the low 64 bits of x.
func (x U256) Uint64() uint64 { return x[0] }

// Cmp returns -1, 0, or +1 comparing x and y as unsigned integers.
func (x U256) Cmp(y U256) int {
	for i := 3; i >= 0; i-- {
		if x[i] < y[i] {
			return -1
		}
		if x[i] > y[i] {
			return 1
		}
	}
	return 0
}

// Lt reports x < y (unsigned).
func (x U256) Lt(y U256) bool { return x.Cmp(y) < 0 }

// Gt reports x > y (unsigned).
func (x U256) Gt(y U256) bool { return x.Cmp(y) > 0 }

// Sign returns 0 if x is zero, -1 if the sign bit is set (two's complement),
// and +1 otherwise.
func (x U256) Sign() int {
	if x.IsZero() {
		return 0
	}
	if x[3]>>63 == 1 {
		return -1
	}
	return 1
}

// Slt reports x < y as signed two's-complement integers.
func (x U256) Slt(y U256) bool {
	xs, ys := x[3]>>63, y[3]>>63
	if xs != ys {
		return xs == 1
	}
	return x.Cmp(y) < 0
}

// Sgt reports x > y as signed two's-complement integers.
func (x U256) Sgt(y U256) bool { return y.Slt(x) }

// Add returns x + y mod 2^256.
func (x U256) Add(y U256) U256 {
	var z U256
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], _ = bits.Add64(x[3], y[3], c)
	return z
}

// Sub returns x - y mod 2^256.
func (x U256) Sub(y U256) U256 {
	var z U256
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], _ = bits.Sub64(x[3], y[3], b)
	return z
}

// Neg returns -x mod 2^256.
func (x U256) Neg() U256 { return Zero.Sub(x) }

// Mul returns x * y mod 2^256.
func (x U256) Mul(y U256) U256 {
	var z U256
	var carry uint64
	// Schoolbook multiplication keeping only the low 256 bits.
	carry, z[0] = bits.Mul64(x[0], y[0])
	carry, z[1] = mulAddc(x[0], y[1], carry)
	carry, z[2] = mulAddc(x[0], y[2], carry)
	_, z[3] = mulAddc(x[0], y[3], carry)

	carry, z[1] = mulAdd2(x[1], y[0], z[1])
	carry, z[2] = mulAdd3(x[1], y[1], z[2], carry)
	_, z[3] = mulAdd3(x[1], y[2], z[3], carry)

	carry, z[2] = mulAdd2(x[2], y[0], z[2])
	_, z[3] = mulAdd3(x[2], y[1], z[3], carry)

	_, z[3] = mulAdd2(x[3], y[0], z[3])
	return z
}

// mulAddc computes a*b + c, returning (hi, lo).
func mulAddc(a, b, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	lo, cc := bits.Add64(lo, c, 0)
	hi += cc
	return hi, lo
}

// mulAdd2 computes a*b + c, returning (hi, lo).
func mulAdd2(a, b, c uint64) (hi, lo uint64) { return mulAddc(a, b, c) }

// mulAdd3 computes a*b + c + d, returning (hi, lo).
func mulAdd3(a, b, c, d uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	lo, cc := bits.Add64(lo, c, 0)
	hi += cc
	lo, cc = bits.Add64(lo, d, 0)
	hi += cc
	return hi, lo
}

// Div returns x / y (unsigned). Division by zero yields 0 (EVM semantics).
func (x U256) Div(y U256) U256 {
	if y.IsZero() {
		return Zero
	}
	if x.Cmp(y) < 0 {
		return Zero
	}
	if y.IsUint64() && x.IsUint64() {
		return FromUint64(x[0] / y[0])
	}
	q, _ := udivrem(x, y)
	return q
}

// Mod returns x % y (unsigned). Mod by zero yields 0 (EVM semantics).
func (x U256) Mod(y U256) U256 {
	if y.IsZero() {
		return Zero
	}
	if x.Cmp(y) < 0 {
		return x
	}
	if y.IsUint64() && x.IsUint64() {
		return FromUint64(x[0] % y[0])
	}
	_, r := udivrem(x, y)
	return r
}

// udivrem computes the unsigned quotient and remainder via big.Int. Simplicity
// beats speed here: division is rare in both compiled contracts and analysis.
func udivrem(x, y U256) (q, r U256) {
	qb, rb := new(big.Int).QuoRem(x.ToBig(), y.ToBig(), new(big.Int))
	return FromBig(qb), FromBig(rb)
}

// SDiv returns x / y as signed two's-complement integers, truncating toward
// zero; division by zero yields 0.
func (x U256) SDiv(y U256) U256 {
	if y.IsZero() {
		return Zero
	}
	xn, yn := x.Sign() < 0, y.Sign() < 0
	ax, ay := x, y
	if xn {
		ax = x.Neg()
	}
	if yn {
		ay = y.Neg()
	}
	q := ax.Div(ay)
	if xn != yn {
		q = q.Neg()
	}
	return q
}

// SMod returns x % y as signed two's-complement integers; the result takes the
// sign of x. Mod by zero yields 0.
func (x U256) SMod(y U256) U256 {
	if y.IsZero() {
		return Zero
	}
	xn := x.Sign() < 0
	ax, ay := x, y
	if xn {
		ax = x.Neg()
	}
	if y.Sign() < 0 {
		ay = y.Neg()
	}
	r := ax.Mod(ay)
	if xn {
		r = r.Neg()
	}
	return r
}

// AddMod returns (x + y) % m with the intermediate sum taken at full
// precision; m == 0 yields 0.
func (x U256) AddMod(y, m U256) U256 {
	if m.IsZero() {
		return Zero
	}
	s := new(big.Int).Add(x.ToBig(), y.ToBig())
	s.Mod(s, m.ToBig())
	return FromBig(s)
}

// MulMod returns (x * y) % m with the intermediate product taken at full
// precision; m == 0 yields 0.
func (x U256) MulMod(y, m U256) U256 {
	if m.IsZero() {
		return Zero
	}
	p := new(big.Int).Mul(x.ToBig(), y.ToBig())
	p.Mod(p, m.ToBig())
	return FromBig(p)
}

// Exp returns x ** y mod 2^256 by square-and-multiply.
func (x U256) Exp(y U256) U256 {
	result := One
	base := x
	for limb := 0; limb < 4; limb++ {
		w := y[limb]
		for bit := 0; bit < 64; bit++ {
			if w&1 == 1 {
				result = result.Mul(base)
			}
			w >>= 1
			if w == 0 && y.highLimbsZeroAbove(limb) {
				return result
			}
			base = base.Mul(base)
		}
	}
	return result
}

func (x U256) highLimbsZeroAbove(limb int) bool {
	for i := limb + 1; i < 4; i++ {
		if x[i] != 0 {
			return false
		}
	}
	return true
}

// And returns the bitwise AND of x and y.
func (x U256) And(y U256) U256 {
	return U256{x[0] & y[0], x[1] & y[1], x[2] & y[2], x[3] & y[3]}
}

// Or returns the bitwise OR of x and y.
func (x U256) Or(y U256) U256 {
	return U256{x[0] | y[0], x[1] | y[1], x[2] | y[2], x[3] | y[3]}
}

// Xor returns the bitwise XOR of x and y.
func (x U256) Xor(y U256) U256 {
	return U256{x[0] ^ y[0], x[1] ^ y[1], x[2] ^ y[2], x[3] ^ y[3]}
}

// Not returns the bitwise complement of x.
func (x U256) Not() U256 { return U256{^x[0], ^x[1], ^x[2], ^x[3]} }

// Shl returns x << n; shifts of 256 or more yield 0.
func (x U256) Shl(n uint) U256 {
	if n >= 256 {
		return Zero
	}
	limbShift, bitShift := n/64, n%64
	var z U256
	for i := 3; i >= 0; i-- {
		src := i - int(limbShift)
		if src < 0 {
			continue
		}
		z[i] = x[src] << bitShift
		if bitShift > 0 && src-1 >= 0 {
			z[i] |= x[src-1] >> (64 - bitShift)
		}
	}
	return z
}

// Shr returns x >> n (logical); shifts of 256 or more yield 0.
func (x U256) Shr(n uint) U256 {
	if n >= 256 {
		return Zero
	}
	limbShift, bitShift := n/64, n%64
	var z U256
	for i := 0; i < 4; i++ {
		src := i + int(limbShift)
		if src > 3 {
			continue
		}
		z[i] = x[src] >> bitShift
		if bitShift > 0 && src+1 <= 3 {
			z[i] |= x[src+1] << (64 - bitShift)
		}
	}
	return z
}

// Sar returns x >> n with sign extension (arithmetic shift). Shifts of 256 or
// more yield 0 for non-negative x and all-ones for negative x.
func (x U256) Sar(n uint) U256 {
	neg := x[3]>>63 == 1
	if n >= 256 {
		if neg {
			return Max
		}
		return Zero
	}
	z := x.Shr(n)
	if neg && n > 0 {
		z = z.Or(Max.Shl(256 - n))
	}
	return z
}

// Byte returns the i-th byte of x counting from the most significant (EVM BYTE
// semantics); i >= 32 yields 0.
func (x U256) Byte(i U256) U256 {
	if !i.IsUint64() || i[0] >= 32 {
		return Zero
	}
	b := x.Bytes32()
	return FromUint64(uint64(b[i[0]]))
}

// SignExtend extends the sign bit of the (k+1)-byte-wide value x to the full
// 256 bits (EVM SIGNEXTEND semantics); k >= 31 returns x unchanged.
func (x U256) SignExtend(k U256) U256 {
	if !k.IsUint64() || k[0] >= 31 {
		return x
	}
	bit := uint(k[0]*8 + 7)
	mask := Max.Shl(bit + 1)
	if x.Bit(bit) == 1 {
		return x.Or(mask)
	}
	return x.And(mask.Not())
}

// Bit returns bit i of x (0 or 1); i >= 256 yields 0.
func (x U256) Bit(i uint) uint {
	if i >= 256 {
		return 0
	}
	return uint(x[i/64]>>(i%64)) & 1
}

// BitLen returns the minimum number of bits needed to represent x.
func (x U256) BitLen() int {
	for i := 3; i >= 0; i-- {
		if x[i] != 0 {
			return 64*i + bits.Len64(x[i])
		}
	}
	return 0
}

// Dec renders x in decimal.
func (x U256) Dec() string { return x.ToBig().String() }
