// Victim: the paper's Section 2 running example, end to end. The contract
// looks guarded — every sensitive function demands user, admin, or owner
// privileges — but referAdmin carries the wrong modifier, so taint escalates
// across four transactions. This example shows (1) the analysis detecting the
// composite vulnerability with its exact escalation chain and (2) the attack
// executing for real on the chain simulator, step by step.
//
//	go run ./examples/victim
package main

import (
	"fmt"
	"log"

	"ethainter"
)

const victimSource = `
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    constructor() {
        owner = msg.sender;
        admins[msg.sender] = true;
    }

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers()  { require(users[msg.sender]); _; }

    function registerSelf() public { users[msg.sender] = true; }
    function referUser(address user) public onlyUsers { users[user] = true; }
    function referAdmin(address adm) public onlyUsers { admins[adm] = true; } // BUG: should be onlyAdmins
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}`

func main() {
	compiled, err := ethainter.Compile(victimSource)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Static detection.
	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Ethainter analysis ===")
	for _, w := range report.Warnings {
		fmt.Printf("[%s] pc=%d\n", w.Kind, w.PC)
		for i, s := range w.Witness {
			fmt.Printf("   step %d: selector 0x%x\n", i+1, s.Selector)
		}
	}

	// 2. The attack, replayed manually so every escalation step is visible.
	tb := ethainter.NewTestbed()
	victim, err := tb.DeployContract(compiled)
	if err != nil {
		log.Fatal(err)
	}
	tb.Fund(victim, ethainter.NewWei(9_999))
	attacker := tb.NewAccount(ethainter.NewWei(100))

	fmt.Println("\n=== manual attack replay ===")
	step := func(name string, args ...ethainter.Wei) {
		_, err := tb.Call(attacker, victim, compiled, name, ethainter.NewWei(0), args...)
		status := "ok"
		if err != nil {
			status = "REVERTED"
		}
		fmt.Printf("  %-22s %s\n", name, status)
	}
	// kill() must fail before the escalation.
	step("kill")
	// The four-step escalation of Section 2.
	step("registerSelf")                 // make myself a user
	step("referAdmin", attacker.Word())  // make myself an admin (the bug)
	step("changeOwner", attacker.Word()) // make myself the owner
	step("kill")                         // destroy; funds go to owner == me

	fmt.Printf("\nvictim destroyed: %v\n", tb.IsDestroyed(victim))
	fmt.Printf("attacker balance: %s wei (started with 100)\n", tb.Balance(attacker).Dec())

	// 3. The same attack, fully automated from the analysis witness.
	fresh := ethainter.NewTestbed()
	victim2, err := fresh.DeployContract(compiled)
	if err != nil {
		log.Fatal(err)
	}
	fresh.Fund(victim2, ethainter.NewWei(9_999))
	res := ethainter.Exploit(fresh, victim2, report)
	fmt.Printf("\n=== Ethainter-Kill (automated) ===\ndestroyed=%v steps=%v\n", res.Destroyed, res.Steps)
}
