// Sweep: a whole-"blockchain" scan in the style of the paper's Section 6.2
// table — generate a mainnet-shaped synthetic population, analyze every
// contract in parallel, and print flag rates per vulnerability, analysis
// failures, and throughput. This example uses the internal research harness
// (corpus generator + parallel driver) rather than only the public API,
// because population generation is a reproduction facility, not a library
// feature.
//
//	go run ./examples/sweep [-n 1000]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"ethainter/internal/bench"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

func main() {
	n := flag.Int("n", 1000, "population size")
	seed := flag.Int64("seed", 7, "corpus seed")
	flag.Parse()

	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("scanning %d contracts with %d workers...\n", *n, workers)
	start := time.Now()
	d := bench.Build(corpus.DefaultProfile(*n, *seed), core.DefaultConfig(), workers)
	elapsed := time.Since(start)

	flagged := map[core.VulnKind]int{}
	anyFlag := 0
	for _, e := range d.Entries {
		if e.Report == nil {
			continue
		}
		if len(e.Report.Warnings) > 0 {
			anyFlag++
		}
		for _, k := range bench.AllKinds() {
			if e.Report.Has(k) {
				flagged[k]++
			}
		}
	}
	fmt.Printf("\n%-30s %8s %8s\n", "vulnerability", "flagged", "rate")
	for _, k := range bench.AllKinds() {
		fmt.Printf("%-30s %8d %7.2f%%\n", k.String(), flagged[k], 100*float64(flagged[k])/float64(*n))
	}
	fmt.Printf("\ncontracts flagged (any kind): %d (%.2f%%)\n", anyFlag, 100*float64(anyFlag)/float64(*n))
	fmt.Printf("decompile/analysis failures:  %d (%.2f%%)\n", d.Failed(), 100*float64(d.Failed())/float64(*n))
	fmt.Printf("wall clock: %s (%.0f contracts/sec)\n", elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds())
}
