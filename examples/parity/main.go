// Parity: a wallet in the shape of the Parity hack the paper cites — the
// initialization routine meant to run once at construction is left publicly
// callable, letting anyone reinitialize the owner and then drain or destroy
// the wallet. Ethainter flags the tainted owner variable and the reachable
// selfdestruct; the example exploits both.
//
//	go run ./examples/parity
package main

import (
	"fmt"
	"log"

	"ethainter"
)

const walletSource = `
contract Wallet {
    address walletOwner;
    uint256 dailyLimit;
    bool initialized;

    // Intended to be called once by the deployment code; actually callable
    // by anyone, forever — the Parity wallet bug.
    function initWallet(address ownerIn, uint256 limit) public {
        walletOwner = ownerIn;
        dailyLimit = limit;
        initialized = true;
    }
    function execute(address to, uint256 amount) public {
        require(msg.sender == walletOwner);
        require(amount <= dailyLimit);
        send(to, amount);
    }
    function kill() public {
        require(msg.sender == walletOwner);
        selfdestruct(walletOwner);
    }
}`

func main() {
	compiled, err := ethainter.Compile(walletSource)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== analysis ===")
	for _, w := range report.Warnings {
		fmt.Printf("[%s] pc=%d — %s\n", w.Kind, w.PC, w.Message)
	}
	if !report.Has(ethainter.TaintedOwner) {
		log.Fatal("expected the tainted owner variable to be flagged")
	}

	// Set the scene: the wallet is deployed and initialized by its rightful
	// owner, then loaded with funds.
	tb := ethainter.NewTestbed()
	wallet, err := tb.DeployContract(compiled)
	if err != nil {
		log.Fatal(err)
	}
	legitimate := tb.NewAccount(ethainter.NewWei(10_000))
	if _, err := tb.Call(legitimate, wallet, compiled, "initWallet",
		ethainter.NewWei(0), legitimate.Word(), ethainter.NewWei(500)); err != nil {
		log.Fatal(err)
	}
	tb.Fund(wallet, ethainter.NewWei(280_000_000)) // the paper's $280M, in spirit

	// The attack: reinitialize, then drain via execute and destroy via kill.
	attacker := tb.NewAccount(ethainter.NewWei(100))
	fmt.Println("\n=== attack ===")
	if _, err := tb.Call(attacker, wallet, compiled, "execute",
		ethainter.NewWei(0), attacker.Word(), ethainter.NewWei(1)); err != nil {
		fmt.Println("execute before reinit: REVERTED (owner guard holds)")
	}
	if _, err := tb.Call(attacker, wallet, compiled, "initWallet",
		ethainter.NewWei(0), attacker.Word(), ethainter.NewWei(280_000_000)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initWallet(attacker, ...): ok — ownership reinitialized")
	if _, err := tb.Call(attacker, wallet, compiled, "kill", ethainter.NewWei(0)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kill(): ok — wallet destroyed: %v\n", tb.IsDestroyed(wallet))
	fmt.Printf("attacker balance: %s wei\n", tb.Balance(attacker).Dec())

	// And the automated version straight from the analysis output.
	fresh := ethainter.NewTestbed()
	w2, err := fresh.DeployContract(compiled)
	if err != nil {
		log.Fatal(err)
	}
	fresh.Fund(w2, ethainter.NewWei(280_000_000))
	res := ethainter.Exploit(fresh, w2, report)
	fmt.Printf("\nEthainter-Kill: destroyed=%v profit=%s wei\n", res.Destroyed, res.Profit.Dec())
}
