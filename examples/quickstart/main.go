// Quickstart: compile a vulnerable contract, analyze it, and print the
// warnings with their escalation witnesses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ethainter"
)

// A contract with the Section 3.1 "tainted owner variable" bug: anyone can
// call initOwner and then pass the ownership check guarding kill().
const source = `
contract Wallet {
    address owner;

    function initOwner(address _owner) public {
        owner = _owner;
    }
    function deposit() public payable {}
    function kill() public {
        if (msg.sender == owner) {
            selfdestruct(owner);
        }
    }
}`

func main() {
	compiled, err := ethainter.Compile(source)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled: %d bytes of runtime bytecode, %d public functions\n",
		len(compiled.Runtime), len(compiled.ABI))

	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	fmt.Printf("\nEthainter found %d warning(s):\n", len(report.Warnings))
	for _, w := range report.Warnings {
		fmt.Printf("  [%s] at pc=%d\n      %s\n", w.Kind, w.PC, w.Message)
		if len(w.Witness) > 0 {
			fmt.Printf("      attack: ")
			for i, s := range w.Witness {
				if i > 0 {
					fmt.Print(" then ")
				}
				fmt.Printf("call 0x%x", s.Selector)
			}
			fmt.Println()
		}
	}

	// Prove it: deploy on the testbed and let Ethainter-Kill destroy it.
	tb := ethainter.NewTestbed()
	addr, err := tb.DeployContract(compiled)
	if err != nil {
		log.Fatal(err)
	}
	tb.Fund(addr, ethainter.NewWei(1_000_000))
	res := ethainter.Exploit(tb, addr, report)
	fmt.Printf("\nEthainter-Kill: destroyed=%v in %d attempt(s), profit=%s wei\n",
		res.Destroyed, res.Attempts, res.Profit.Dec())
}
