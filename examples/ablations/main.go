// Ablations: the Figure 8 design-decision study, interactively. Two contracts
// — the composite Victim and a perfectly safe owner-guarded Sweeper — are
// analyzed under the default configuration and the three ablations, showing
// why each modeling decision matters:
//
//   - without storage modeling (8a), the composite escalation disappears
//     (completeness loss);
//
//   - without guard modeling (8b), the safe Sweeper gets flagged
//     (precision loss);
//
//   - with conservative storage (8c), unresolved loads inherit any taint and
//     the array-backed vault gets flagged (precision loss).
//
//     go run ./examples/ablations
package main

import (
	"fmt"
	"log"

	"ethainter"
)

var fixtures = []struct {
	name   string
	truth  string
	source string
}{
	{
		name:  "Victim (composite, genuinely vulnerable)",
		truth: "exploitable: registerSelf -> referAdmin -> kill",
		source: `
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;
    constructor() { owner = msg.sender; admins[msg.sender] = true; }
    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }
    function registerSelf() public { users[msg.sender] = true; }
    function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}`,
	},
	{
		name:  "Sweeper (owner-guarded, safe)",
		truth: "not exploitable: every sink is behind an intact owner guard",
		source: `
contract Sweeper {
    address owner;
    constructor() { owner = msg.sender; }
    function destroy(address to) public {
        require(msg.sender == owner);
        selfdestruct(to);
    }
}`,
	},
	{
		name:  "BackupVault (array-addressed, safe)",
		truth: "not exploitable: the beneficiary array is owner-maintained",
		source: `
contract BackupVault {
    address owner;
    uint256 memo;
    address[4] backups;
    constructor() { owner = msg.sender; }
    function setMemo(uint256 m) public { memo = m; }
    function setBackup(uint256 i, address who) public {
        require(msg.sender == owner);
        require(i < 4);
        backups[i] = who;
    }
    function retire(uint256 i) public {
        require(msg.sender == owner);
        require(i < 4);
        selfdestruct(backups[i]);
    }
}`,
	},
}

func main() {
	configs := []struct {
		name string
		cfg  ethainter.Config
	}{
		{"default (full Ethainter)", ethainter.DefaultConfig()},
		{"8a: no storage modeling", func() ethainter.Config {
			c := ethainter.DefaultConfig()
			c.ModelStorageTaint = false
			return c
		}()},
		{"8b: no guard modeling", func() ethainter.Config {
			c := ethainter.DefaultConfig()
			c.ModelGuards = false
			return c
		}()},
		{"8c: conservative storage", func() ethainter.Config {
			c := ethainter.DefaultConfig()
			c.ConservativeStorage = true
			return c
		}()},
	}
	for _, fx := range fixtures {
		fmt.Printf("=== %s ===\n    ground truth: %s\n", fx.name, fx.truth)
		compiled, err := ethainter.Compile(fx.source)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range configs {
			report, err := ethainter.AnalyzeBytecode(compiled.Runtime, c.cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-28s", c.name)
			if len(report.Warnings) == 0 {
				fmt.Println("clean")
				continue
			}
			seen := map[string]bool{}
			for _, w := range report.Warnings {
				if k := w.Kind.String(); !seen[k] {
					seen[k] = true
					fmt.Printf(" [%s]", k)
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Reading the output: the default analysis flags exactly the Victim;")
	fmt.Println("8a loses it (no taint through storage = no composite), while 8b and 8c")
	fmt.Println("flag the safe contracts too — the precision/completeness tradeoff of")
	fmt.Println("Section 6.4, one contract at a time.")
}
