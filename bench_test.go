// Benchmarks regenerating the paper's evaluation, one per table/figure. Each
// runs a scaled-down corpus per iteration (cmd/ethainter-bench runs the
// full-scale sweeps and prints the paper-style tables).
package ethainter_test

import (
	"testing"

	"ethainter"
	"ethainter/internal/bench"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/minisol"
)

const (
	benchN    = 150
	benchSeed = 20200615
)

// BenchmarkExp1Kill regenerates Section 6.1: the automated end-to-end exploit
// sweep (flag rate, pinpointed entries, destroyed contracts).
func BenchmarkExp1Kill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Exp1(benchN, benchSeed, 0)
		if r.Destroyed == 0 {
			b.Fatal("no contracts destroyed")
		}
	}
}

// BenchmarkTable2FlagRates regenerates the Section 6.2 flag-rate table.
func BenchmarkTable2FlagRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Table2(benchN, benchSeed, 0)
		if r.Flagged[core.AccessibleSelfdestruct] == 0 {
			b.Fatal("no flags")
		}
	}
}

// BenchmarkFig6Precision regenerates the Figure 6 inspection sample.
func BenchmarkFig6Precision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig6(400, benchSeed, 40, 0)
		if r.TotalSeen == 0 {
			b.Fatal("empty sample")
		}
	}
}

// BenchmarkSecurifyCompare regenerates the Securify comparison.
func BenchmarkSecurifyCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.SecurifyCmp(benchN, benchSeed, benchN, 0)
		if r.FlaggedCompat == 0 {
			b.Fatal("securify flagged nothing")
		}
	}
}

// BenchmarkFig7Securify2 regenerates the Figure 7 source-universe comparison.
func BenchmarkFig7Securify2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7(600, benchSeed, 0)
		if r.Universe == 0 {
			b.Fatal("empty universe")
		}
	}
}

// BenchmarkTeetherCompare regenerates the teEther comparison.
func BenchmarkTeetherCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.TeetherCmp(100, benchSeed, 0)
		if r.EthainterFlagged == 0 {
			b.Fatal("nothing flagged")
		}
	}
}

// BenchmarkFig8Ablations regenerates the Figure 8 design-decision ablations.
func BenchmarkFig8Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig8(benchN, benchSeed, 0)
		if r.Default[core.AccessibleSelfdestruct] == 0 {
			b.Fatal("no default reports")
		}
	}
}

// BenchmarkAnalyzeContract measures the Section 6.3 per-contract cost
// (decompilation + analysis) on the paper's running example.
func BenchmarkAnalyzeContract(b *testing.B) {
	compiled := minisol.MustCompile(minisol.VictimSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipelinePerContract measures compile + decompile + analyze +
// exploit for one composite contract — the end-to-end unit of Experiment 1.
func BenchmarkFullPipelinePerContract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compiled, err := ethainter.Compile(minisol.VictimSource)
		if err != nil {
			b.Fatal(err)
		}
		report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tb := ethainter.NewTestbed()
		addr, err := tb.DeployContract(compiled)
		if err != nil {
			b.Fatal(err)
		}
		if res := ethainter.Exploit(tb, addr, report); !res.Destroyed {
			b.Fatal("victim not destroyed")
		}
	}
}

// BenchmarkCorpusGeneration measures corpus synthesis + compilation.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := corpus.Generate(corpus.DefaultProfile(100, benchSeed))
		if len(cs) != 100 {
			b.Fatal("bad corpus")
		}
	}
}
