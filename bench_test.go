// Benchmarks regenerating the paper's evaluation, one per table/figure. Each
// runs a scaled-down corpus per iteration (cmd/ethainter-bench runs the
// full-scale sweeps and prints the paper-style tables).
package ethainter_test

import (
	"fmt"
	"runtime"
	"testing"

	"ethainter"
	"ethainter/internal/bench"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/datalog"
	"ethainter/internal/minisol"
)

const (
	benchN    = 150
	benchSeed = 20200615
)

// BenchmarkExp1Kill regenerates Section 6.1: the automated end-to-end exploit
// sweep (flag rate, pinpointed entries, destroyed contracts).
func BenchmarkExp1Kill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Exp1(benchN, benchSeed, 0)
		if r.Destroyed == 0 {
			b.Fatal("no contracts destroyed")
		}
	}
}

// BenchmarkTable2FlagRates regenerates the Section 6.2 flag-rate table.
func BenchmarkTable2FlagRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Table2(benchN, benchSeed, 0)
		if r.Flagged[core.AccessibleSelfdestruct] == 0 {
			b.Fatal("no flags")
		}
	}
}

// BenchmarkFig6Precision regenerates the Figure 6 inspection sample.
func BenchmarkFig6Precision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig6(400, benchSeed, 40, 0)
		if r.TotalSeen == 0 {
			b.Fatal("empty sample")
		}
	}
}

// BenchmarkSecurifyCompare regenerates the Securify comparison.
func BenchmarkSecurifyCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.SecurifyCmp(benchN, benchSeed, benchN, 0)
		if r.FlaggedCompat == 0 {
			b.Fatal("securify flagged nothing")
		}
	}
}

// BenchmarkFig7Securify2 regenerates the Figure 7 source-universe comparison.
func BenchmarkFig7Securify2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7(600, benchSeed, 0)
		if r.Universe == 0 {
			b.Fatal("empty universe")
		}
	}
}

// BenchmarkTeetherCompare regenerates the teEther comparison.
func BenchmarkTeetherCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.TeetherCmp(100, benchSeed, 0)
		if r.EthainterFlagged == 0 {
			b.Fatal("nothing flagged")
		}
	}
}

// BenchmarkFig8Ablations regenerates the Figure 8 design-decision ablations.
func BenchmarkFig8Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig8(benchN, benchSeed, 0)
		if r.Default[core.AccessibleSelfdestruct] == 0 {
			b.Fatal("no default reports")
		}
	}
}

// BenchmarkAnalyzeContract measures the Section 6.3 per-contract cost
// (decompilation + analysis) on the paper's running example.
func BenchmarkAnalyzeContract(b *testing.B) {
	compiled := minisol.MustCompile(minisol.VictimSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipelinePerContract measures compile + decompile + analyze +
// exploit for one composite contract — the end-to-end unit of Experiment 1.
func BenchmarkFullPipelinePerContract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compiled, err := ethainter.Compile(minisol.VictimSource)
		if err != nil {
			b.Fatal(err)
		}
		report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tb := ethainter.NewTestbed()
		addr, err := tb.DeployContract(compiled)
		if err != nil {
			b.Fatal(err)
		}
		if res := ethainter.Exploit(tb, addr, report); !res.Destroyed {
			b.Fatal("victim not destroyed")
		}
	}
}

// benchContracts generates the default corpus profile and drops the
// contracts whose decompilation fails (the paper's timeouts), so the
// benchmarks measure analysis cost, not error paths.
func benchContracts(b *testing.B) []*corpus.Contract {
	b.Helper()
	var out []*corpus.Contract
	for _, c := range corpus.Generate(corpus.DefaultProfile(benchN, benchSeed)) {
		if _, err := ethainter.AnalyzeBytecode(c.Runtime, ethainter.DefaultConfig()); err == nil {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		b.Fatal("no analyzable contracts")
	}
	return out
}

// BenchmarkAnalyzeBytecode measures per-contract cost of a sweep over the
// default corpus profile through the content-addressed cache — the shipped
// fast path, exploiting the corpus's bytecode duplication the way the paper's
// unique-contract dedup does. Corpus generation is outside the timer.
func BenchmarkAnalyzeBytecode(b *testing.B) {
	contracts := benchContracts(b)
	cfg := ethainter.DefaultConfig()
	cache := ethainter.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := contracts[i%len(contracts)]
		if _, err := cache.AnalyzeBytecode(c.Runtime, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeBytecodeUncached is the same sweep analyzing every contract
// from scratch: the per-contract decompile+analyze cost with no sharing, so
// engine-level regressions stay visible behind the cache.
func BenchmarkAnalyzeBytecodeUncached(b *testing.B) {
	contracts := benchContracts(b)
	cfg := ethainter.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := contracts[i%len(contracts)]
		if _, err := ethainter.AnalyzeBytecode(c.Runtime, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatalogFixpoint stresses the Datalog engine in isolation: a
// join-heavy transitive closure over a ladder graph (each node has two
// successors), so regressions in the tuple set, indices, or join planner show
// up independently of the analysis pipeline.
func BenchmarkDatalogFixpoint(b *testing.B) {
	const n = 120
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := datalog.NewProgram()
		p.MustParse(`
			path(X, Y) :- edge(X, Y).
			path(X, Z) :- path(X, Y), edge(Y, Z).
			meet(X) :- path(X, Y), path(Y, X).
		`)
		for j := 0; j < n; j++ {
			p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+1)%n))
			p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+7)%n))
		}
		if err := p.Run(); err != nil {
			b.Fatal(err)
		}
		if p.Count("path") == 0 {
			b.Fatal("empty closure")
		}
	}
}

// BenchmarkDatalogFixpointParallel is the same workload fanned across the
// engine's intra-fixpoint worker pool: one sub-benchmark per worker count, so
// the scaling curve (and the sequential overhead of the parallel machinery)
// lands in benchmark output next to BenchmarkDatalogFixpoint.
func BenchmarkDatalogFixpointParallel(b *testing.B) {
	const n = 120
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := datalog.NewProgram()
				p.MustParse(`
					path(X, Y) :- edge(X, Y).
					path(X, Z) :- path(X, Y), edge(Y, Z).
					meet(X) :- path(X, Y), path(Y, X).
				`)
				for j := 0; j < n; j++ {
					p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+1)%n))
					p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+7)%n))
				}
				p.SetParallelism(workers)
				if err := p.Run(); err != nil {
					b.Fatal(err)
				}
				if p.Count("path") == 0 {
					b.Fatal("empty closure")
				}
			}
		})
	}
}

// BenchmarkCorpusGeneration measures corpus synthesis + compilation.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := corpus.Generate(corpus.DefaultProfile(100, benchSeed))
		if len(cs) != 100 {
			b.Fatal("bad corpus")
		}
	}
}
