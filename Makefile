GO ?= go
# Max fractional wall-clock regression bench-check tolerates (0.5 = +50%,
# loose enough for shared CI runners; counts are always compared exactly).
BENCH_TOLERANCE ?= 0.5

.PHONY: all build test vet bench bench-json bench-check sweep-check warm-check replica-check analysis-check experiments examples serve-smoke sync-smoke fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

# One Go benchmark per paper table/figure (reduced scale).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable core performance numbers: per-stage timings and cache hit
# rates, written to BENCH_core.json.
bench-json:
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -json BENCH_core.json

# Regenerate the core numbers into a scratch file and diff them against the
# committed BENCH_core.json: counts must match exactly, wall clocks (including
# the decompile stage sum) may only regress within BENCH_TOLERANCE — and are
# only compared at all when the recorded CPU counts match the baseline's.
# Non-blocking in CI (timings are noisy on shared runners) but the exit code
# is real for local use.
bench-check:
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -json BENCH_fresh.json > /dev/null
	$(GO) run ./scripts -baseline BENCH_core.json -fresh BENCH_fresh.json -tolerance $(BENCH_TOLERANCE)
	rm -f BENCH_fresh.json

# Cheap two-point sweep-scaling run (workers {1,4}): count equality at every
# point and the unique-work-per-unique-bytecode invariant are enforced on any
# machine; wall checks skip automatically when the CPU shape differs from the
# committed baseline.
sweep-check:
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -sweep-workers 4 -json BENCH_sweep.json > /dev/null
	$(GO) run ./scripts -baseline BENCH_core.json -fresh BENCH_sweep.json -tolerance $(BENCH_TOLERANCE)
	rm -f BENCH_sweep.json

# Cold→warm double process start over the persistent cache tier, then
# bench_compare's warm_restart assertions: the warm start must perform zero
# analyses and zero decompilations with a result digest bit-identical to the
# cold start's. Machine-independent (the checks are exact counts and digests,
# not walls), so this is a blocking CI step.
warm-check:
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -sweep-workers 1 -json BENCH_warm.json > /dev/null
	$(GO) run ./scripts -baseline BENCH_core.json -fresh BENCH_warm.json -tolerance $(BENCH_TOLERANCE)
	rm -f BENCH_warm.json

# Two-replica peer-fill gate, blocking: the failure-injection and multi-writer
# tests first (unreachable/corrupt peers must degrade to local compute with
# every rejected entry counted, two tier handles over one directory must not
# corrupt counters), then the two-replica sweep itself: each replica
# cold-analyzes half the corpus and sweeps the other half entirely over the
# peer-fill protocol — bench_compare's replica_sweep assertions require zero
# analyses and zero decompilations on both warm passes, exact peer-hit
# accounting, and digests bit-identical across replicas. Exact counts and
# digests only, so machine-independent.
replica-check:
	$(GO) test -race -run 'TestRemoteTier|TestPeerFill|TestDiskTierMultiWriter|TestReplicaSweepContract' ./internal/core ./internal/sched ./internal/bench
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -sweep-workers 1 -json BENCH_replica.json > /dev/null
	$(GO) run ./scripts -baseline BENCH_core.json -fresh BENCH_replica.json -tolerance $(BENCH_TOLERANCE)
	rm -f BENCH_replica.json

# Shared-facts and fixpoint-equivalence gate, blocking: the dirty-queue
# worklist must reproduce the reference fixpoint bit-for-bit on the committed
# fuzz seed corpus, the shared-facts path must be race-clean under concurrent
# multi-config analysis, and bench_compare's config_sweep invariant must hold
# (N configs through one cache => exactly one facts computation per unique
# decompilable bytecode; the facts/guards/fixpoint stage walls are also held
# to BENCH_TOLERANCE when the CPU shape matches the baseline).
analysis-check:
	$(GO) test -run 'TestWorklistMatchesReferenceCorpus|FuzzFixpointEquivalence|TestCacheFactsComputedOncePerProgram|TestCacheWarmDiskColdConfigFactsOnce' ./internal/core
	$(GO) test -race -run 'TestSharedFactsConcurrentConfigs|TestCacheDecompileSingleflight' ./internal/core
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -sweep-workers 1 -json BENCH_analysis.json > /dev/null
	$(GO) run ./scripts -baseline BENCH_core.json -fresh BENCH_analysis.json -tolerance $(BENCH_TOLERANCE)
	rm -f BENCH_analysis.json

# Full-scale regeneration of every table and figure (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/ethainter-bench -n 2000 -seed 20200615

# Boot ethainter-serve, exercise /healthz, /analyze (cache hit), /batch and
# /statsz, then assert clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# Short chain follow over a seeded chain, cold then warm against one
# -cache-dir: asserts findings are indexed with zero duplicate analyses, and
# that the warm restart reproduces the cold findings digest with zero new
# analyses/decompilations. Exact counts and digests only — blocking in CI.
sync-smoke:
	sh scripts/sync_smoke.sh

# Short mutation-fuzz runs: the full analysis pipeline (decompile through
# detect) under tight work budgets, then the disk-entry decoder against
# arbitrary and bit-flipped bytes (it must never panic and never accept a
# checksum-failing entry — the peer-fill protocol feeds it network input).
# The committed seed corpora already replay on every plain `go test`; this
# exercises the mutation engine itself.
fuzz-smoke:
	$(GO) test -fuzz=FuzzAnalyzeBytecode -fuzztime=20s ./internal/core
	$(GO) test -fuzz=FuzzDiskEntryDecode -fuzztime=10s ./internal/core

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/victim
	$(GO) run ./examples/parity
	$(GO) run ./examples/sweep -n 500
	$(GO) run ./examples/ablations

clean:
	$(GO) clean ./...
