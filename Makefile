GO ?= go

.PHONY: all build test vet bench bench-json experiments examples serve-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One Go benchmark per paper table/figure (reduced scale).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable core performance numbers: per-stage timings and cache hit
# rates, written to BENCH_core.json.
bench-json:
	$(GO) run ./cmd/ethainter-bench -exp core -n 2000 -seed 20200615 -json BENCH_core.json

# Full-scale regeneration of every table and figure (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/ethainter-bench -n 2000 -seed 20200615

# Boot ethainter-serve, exercise /healthz, /analyze (cache hit), /batch and
# /statsz, then assert clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/victim
	$(GO) run ./examples/parity
	$(GO) run ./examples/sweep -n 500
	$(GO) run ./examples/ablations

clean:
	$(GO) clean ./...
