// Package ethainter is the public API of this Ethainter reproduction: a
// security analyzer detecting composite information-flow vulnerabilities in
// Ethereum smart contracts (Brent et al., PLDI 2020).
//
// The typical flow is three calls:
//
//	compiled, err := ethainter.Compile(src)          // or bring your own bytecode
//	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
//	for _, w := range report.Warnings { ... }        // five vulnerability kinds
//
// Each warning carries a Witness: the ordered list of public functions whose
// successive invocation performs the escalation the analysis found. The
// companion exploit tool replays it on an in-process chain:
//
//	tb := ethainter.NewTestbed()
//	addr, _ := tb.DeployContract(compiled)
//	result := ethainter.Exploit(tb, addr, report)    // result.Destroyed, result.Steps
//
// Everything is implemented in this repository from scratch: the EVM
// interpreter and chain simulator, a Gigahorse-style decompiler to SSA
// 3-address code, a stratified Datalog engine running the paper's formal
// rules, the analysis itself, and the baselines it is evaluated against.
package ethainter

import (
	"context"
	"fmt"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/decompiler"
	"ethainter/internal/evm"
	"ethainter/internal/kill"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

// Config selects analysis variants; see DefaultConfig and the Figure 8
// ablations (ModelGuards, ModelStorageTaint, ConservativeStorage).
type Config = core.Config

// DefaultConfig is the production analysis configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Report is the analysis result for one contract.
type Report = core.Report

// Warning is one flagged vulnerability with its escalation witness.
type Warning = core.Warning

// Step is one transaction of a composite attack.
type Step = core.Step

// VulnKind enumerates the five vulnerability classes of the paper's
// Section 3.
type VulnKind = core.VulnKind

// The five vulnerability kinds.
const (
	AccessibleSelfdestruct = core.AccessibleSelfdestruct
	TaintedSelfdestruct    = core.TaintedSelfdestruct
	TaintedOwner           = core.TaintedOwner
	UncheckedStaticcall    = core.UncheckedStaticcall
	TaintedDelegatecall    = core.TaintedDelegatecall
)

// AnalyzeBytecode decompiles runtime bytecode and runs the Ethainter
// analysis. Decompilation failures (unresolvable jumps, stack inconsistency)
// are returned as errors, matching how the paper counts analysis timeouts.
func AnalyzeBytecode(code []byte, cfg Config) (*Report, error) {
	return core.AnalyzeBytecode(code, cfg)
}

// AnalyzeBytecodeContext is AnalyzeBytecode with cancellation: the fixpoint
// polls ctx between passes, so a deadline or disconnect aborts the analysis
// with ctx.Err() instead of running to convergence. Cache (which has the
// same method) never memoizes cancellations.
func AnalyzeBytecodeContext(ctx context.Context, code []byte, cfg Config) (*Report, error) {
	return core.AnalyzeBytecodeContext(ctx, code, cfg)
}

// DecompileLimits is the decompilation work budget carried by
// Config.DecompileLimits: MaxContexts bounds (block, stack-depth)
// specializations, MaxWorklistSteps the value-set fixpoint, MaxStatements
// emitted TAC. The zero value selects the defaults, which reproduce the
// unbudgeted decompiler exactly; exhausting any budget is a deterministic
// error matching ErrBudgetExhausted.
type DecompileLimits = decompiler.Limits

// DefaultDecompileLimits returns the production work budgets.
func DefaultDecompileLimits() DecompileLimits { return decompiler.DefaultLimits() }

// ErrBudgetExhausted classifies deterministic decompilation-budget failures;
// test with errors.Is or IsBudgetExhaustion.
var ErrBudgetExhausted = decompiler.ErrBudgetExhausted

// IsCancellation reports whether an analysis error is a context cancellation
// or deadline — the caller's budget, never memoized by Cache.
func IsCancellation(err error) bool { return core.IsCancellation(err) }

// IsBudgetExhaustion reports whether an analysis error is a deterministic
// decompilation work-budget failure — a property of (bytecode, limits) that
// Cache memoizes negatively.
func IsBudgetExhaustion(err error) bool { return core.IsBudgetExhaustion(err) }

// IsInternal reports whether an analysis error is a recovered analyzer panic
// (an analyzer defect, not an input property).
func IsInternal(err error) bool { return core.IsInternal(err) }

// Cache memoizes decompilation and analysis reports across a sweep,
// content-addressed by keccak-256 of the runtime bytecode and a config
// fingerprint — the unique-contract deduplication of the paper's Section 6.
type Cache = core.Cache

// CacheStats are a Cache's hit/miss/eviction counters.
type CacheStats = core.CacheStats

// NewCache returns an analysis cache bounded to maxEntries reports;
// maxEntries <= 0 selects a default capacity.
func NewCache(maxEntries int) *Cache { return core.NewCache(maxEntries) }

// AnalyzeSource compiles mini-Solidity source and analyzes its runtime code.
func AnalyzeSource(src string, cfg Config) (*Report, error) {
	compiled, err := minisol.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return core.AnalyzeBytecode(compiled.Runtime, cfg)
}

// Compiled is a compiled contract: deploy code, runtime code, and ABI.
type Compiled = minisol.Compiled

// FuncABI describes one public function's external interface.
type FuncABI = minisol.FuncABI

// Compile compiles mini-Solidity source (see docs/LANGUAGE.md for the
// accepted subset).
func Compile(src string) (*Compiled, error) { return minisol.CompileSource(src) }

// SelectorOf computes a 4-byte function selector from a canonical signature
// such as "transfer(address,uint256)".
func SelectorOf(sig string) [4]byte { return minisol.SelectorOf(sig) }

// DecompileToIR lifts runtime bytecode to the textual SSA 3-address form the
// analysis consumes — useful for inspection and debugging.
func DecompileToIR(code []byte) (string, error) {
	prog, err := decompiler.Decompile(code)
	if err != nil {
		return "", err
	}
	return prog.String(), nil
}

// Disassemble renders runtime bytecode as an instruction listing.
func Disassemble(code []byte) string { return evm.FormatDisassembly(code) }

// --- testbed: the in-process chain ---

// Address is a 160-bit account address.
type Address = evm.Address

// Wei is a 256-bit amount.
type Wei = u256.U256

// NewWei builds an amount from a uint64.
func NewWei(v uint64) Wei { return u256.FromUint64(v) }

// Testbed is an in-process blockchain: deploy contracts, send transactions,
// observe traces. It stands in for a devnet node.
type Testbed struct {
	chain    *chain.Chain
	deployer Address
}

// NewTestbed returns a fresh chain with a funded deployer account.
func NewTestbed() *Testbed {
	c := chain.New()
	return &Testbed{chain: c, deployer: c.NewAccount(u256.MustHex("0xffffffffffffffff"))}
}

// NewAccount creates a funded externally-owned account.
func (t *Testbed) NewAccount(balance Wei) Address { return t.chain.NewAccount(balance) }

// DeployContract deploys compiled code (running its constructor) and returns
// the contract address.
func (t *Testbed) DeployContract(c *Compiled) (Address, error) {
	r := t.chain.Deploy(t.deployer, c.Deploy, u256.Zero)
	if r.Err != nil {
		return Address{}, fmt.Errorf("ethainter: deploy failed: %w", r.Err)
	}
	return r.Created, nil
}

// Fund credits an address with the given balance.
func (t *Testbed) Fund(a Address, amount Wei) {
	t.chain.State.AddBalance(a, amount)
	t.chain.State.Finalize()
}

// Balance returns the current balance of an address.
func (t *Testbed) Balance(a Address) Wei { return t.chain.State.GetBalance(a) }

// Call sends a transaction invoking the named public function with word
// arguments, returning the raw output or the revert error.
func (t *Testbed) Call(from Address, to Address, c *Compiled, fn string, value Wei, args ...Wei) ([]byte, error) {
	abi, ok := minisol.FindABI(c.ABI, fn)
	if !ok {
		return nil, fmt.Errorf("ethainter: no public function %q", fn)
	}
	data, err := abi.EncodeCall(args...)
	if err != nil {
		return nil, err
	}
	r := t.chain.Call(from, to, data, value)
	if r.Err != nil {
		return r.Output, fmt.Errorf("ethainter: call %s reverted: %w", fn, r.Err)
	}
	return r.Output, nil
}

// ReturnWord decodes a single 256-bit return value.
func ReturnWord(out []byte) (Wei, error) { return minisol.DecodeReturnWord(out) }

// IsDestroyed reports whether a contract self-destructed.
func (t *Testbed) IsDestroyed(a Address) bool { return t.chain.IsDestroyed(a) }

// --- Ethainter-Kill ---

// ExploitResult reports one automated exploitation attempt.
type ExploitResult = kill.Result

// Exploit runs Ethainter-Kill against the target: it replays the report's
// witness chains with generated parameters on forks of the testbed's chain
// and confirms destruction from the instruction trace. The testbed's primary
// state is never modified.
func Exploit(t *Testbed, target Address, report *Report) *ExploitResult {
	return kill.New(t.chain).Exploit(target, report)
}

// DescribeWitness renders an escalation chain using the contract's ABI: each
// step becomes the function signature when the selector is known, or a
// hex-rendered selector otherwise.
func DescribeWitness(c *Compiled, witness []Step) []string {
	bySel := map[[4]byte]string{}
	if c != nil {
		for _, fn := range c.ABI {
			bySel[fn.Selector] = fn.Sig
		}
	}
	out := make([]string, len(witness))
	for i, s := range witness {
		if sig, ok := bySel[s.Selector]; ok {
			out[i] = sig
		} else {
			out[i] = fmt.Sprintf("0x%x(%d args)", s.Selector, s.NumArgs)
		}
	}
	return out
}
