package ethainter_test

import (
	"strings"
	"testing"

	"ethainter"
)

const victimSrc = `
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;
    constructor() { owner = msg.sender; admins[msg.sender] = true; }
    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }
    function registerSelf() public { users[msg.sender] = true; }
    function referUser(address user) public onlyUsers { users[user] = true; }
    function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}`

// The README quickstart, as a test: compile, analyze, exploit.
func TestPublicAPIEndToEnd(t *testing.T) {
	compiled, err := ethainter.Compile(victimSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !report.Has(ethainter.AccessibleSelfdestruct) || !report.Has(ethainter.TaintedSelfdestruct) {
		t.Fatalf("missing composite findings: %v", report.Warnings)
	}

	tb := ethainter.NewTestbed()
	addr, err := tb.DeployContract(compiled)
	if err != nil {
		t.Fatal(err)
	}
	tb.Fund(addr, ethainter.NewWei(4242))
	res := ethainter.Exploit(tb, addr, report)
	if !res.Destroyed {
		t.Fatalf("exploit failed after %d attempts", res.Attempts)
	}
	if tb.IsDestroyed(addr) {
		t.Fatal("primary testbed chain must stay intact")
	}
}

func TestAnalyzeSourceShortcut(t *testing.T) {
	report, err := ethainter.AnalyzeSource(victimSrc, ethainter.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Warnings) == 0 {
		t.Fatal("no warnings")
	}
	for _, w := range report.Warnings {
		if w.Kind == ethainter.AccessibleSelfdestruct && len(w.Witness) != 3 {
			t.Errorf("composite witness should have 3 steps, got %v", w.Witness)
		}
	}
}

func TestTestbedCalls(t *testing.T) {
	compiled, err := ethainter.Compile(`
contract Counter {
    uint256 n;
    function bump() public returns (uint256) { n += 1; return n; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	tb := ethainter.NewTestbed()
	addr, err := tb.DeployContract(compiled)
	if err != nil {
		t.Fatal(err)
	}
	user := tb.NewAccount(ethainter.NewWei(100))
	for want := uint64(1); want <= 3; want++ {
		out, err := tb.Call(user, addr, compiled, "bump", ethainter.NewWei(0))
		if err != nil {
			t.Fatal(err)
		}
		w, err := ethainter.ReturnWord(out)
		if err != nil {
			t.Fatal(err)
		}
		if w != ethainter.NewWei(want) {
			t.Fatalf("bump #%d = %s", want, w)
		}
	}
	if _, err := tb.Call(user, addr, compiled, "nope", ethainter.NewWei(0)); err == nil {
		t.Fatal("unknown function should error")
	}
}

func TestIRAndDisassembly(t *testing.T) {
	compiled, err := ethainter.Compile(victimSrc)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := ethainter.DecompileToIR(compiled.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir, "SELFDESTRUCT") || !strings.Contains(ir, "PHI") {
		t.Error("IR missing expected content")
	}
	asm := ethainter.Disassemble(compiled.Runtime)
	if !strings.Contains(asm, "CALLDATALOAD") {
		t.Error("disassembly missing dispatcher")
	}
	sel := ethainter.SelectorOf("kill()")
	if sel != [4]byte{0x41, 0xc0, 0xe1, 0xb5} {
		t.Errorf("selector = %x", sel)
	}
}

func TestDescribeWitness(t *testing.T) {
	compiled, err := ethainter.Compile(victimSrc)
	if err != nil {
		t.Fatal(err)
	}
	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range report.Warnings {
		if w.Kind != ethainter.AccessibleSelfdestruct {
			continue
		}
		names := ethainter.DescribeWitness(compiled, w.Witness)
		want := []string{"registerSelf()", "referAdmin(address)", "kill()"}
		if len(names) != len(want) {
			t.Fatalf("witness names = %v", names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("witness names = %v, want %v", names, want)
			}
		}
	}
	// Unknown selectors render as hex.
	got := ethainter.DescribeWitness(nil, []ethainter.Step{{Selector: [4]byte{1, 2, 3, 4}, NumArgs: 2}})
	if got[0] != "0x01020304(2 args)" {
		t.Fatalf("unknown selector rendering: %q", got[0])
	}
}
