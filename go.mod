module ethainter

go 1.22
